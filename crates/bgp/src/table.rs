//! The LPM-indexed routing table.

use std::net::Ipv4Addr;

use eleph_net::{CompressedTrieLpm, Lpm, Prefix, PrefixSet};
use rand::Rng;

use crate::RouteEntry;

/// A BGP RIB snapshot indexed for longest-prefix-match attribution.
///
/// [`BgpTable::attribute`] is the core of the paper's methodology: it maps
/// a packet's destination address to the prefix whose per-interval
/// bandwidth series the classification schemes operate on.
#[derive(Debug, Clone, Default)]
pub struct BgpTable {
    lpm: CompressedTrieLpm<RouteEntry>,
}

impl BgpTable {
    /// Empty table.
    pub fn new() -> Self {
        BgpTable {
            lpm: CompressedTrieLpm::new(),
        }
    }

    /// Build from entries; a duplicate prefix replaces the earlier entry.
    pub fn from_entries<I: IntoIterator<Item = RouteEntry>>(entries: I) -> Self {
        let mut t = Self::new();
        for e in entries {
            t.insert(e);
        }
        t
    }

    /// Insert a route, returning the replaced entry if the prefix existed.
    pub fn insert(&mut self, entry: RouteEntry) -> Option<RouteEntry> {
        self.lpm.insert(entry.prefix, entry)
    }

    /// Remove the route for exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<RouteEntry> {
        self.lpm.remove(prefix)
    }

    /// Exact-match fetch.
    pub fn get(&self, prefix: Prefix) -> Option<&RouteEntry> {
        self.lpm.get(prefix)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.lpm.len()
    }

    /// Whether the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.lpm.is_empty()
    }

    /// Freeze the current snapshot into a read-optimized
    /// [`crate::FrozenBgpTable`] (flat-array lookup, dense route ids).
    ///
    /// This is the RIB→FIB compile step: call it once per table
    /// version, then attribute packets against the frozen copy.
    pub fn freeze(&self) -> crate::FrozenBgpTable {
        crate::FrozenBgpTable::new(self)
    }

    /// Longest-prefix attribution of a destination address: the flow key.
    pub fn attribute(&self, dst: Ipv4Addr) -> Option<(Prefix, &RouteEntry)> {
        self.lpm.lookup_addr(dst)
    }

    /// Longest-prefix attribution from host-order bits.
    pub fn attribute_u32(&self, dst: u32) -> Option<(Prefix, &RouteEntry)> {
        self.lpm.lookup(dst)
    }

    /// Iterate over all routes in RIB-dump order.
    pub fn iter(&self) -> impl Iterator<Item = &RouteEntry> {
        self.lpm.iter().map(|(_, e)| e)
    }

    /// The set of all prefixes in the table.
    pub fn prefix_set(&self) -> PrefixSet {
        self.lpm.iter().map(|(p, _)| p).collect()
    }

    /// Histogram of prefix lengths (index = length).
    pub fn length_histogram(&self) -> [usize; 33] {
        let mut h = [0usize; 33];
        for (p, _) in self.lpm.iter() {
            h[p.len() as usize] += 1;
        }
        h
    }

    /// Sample an address inside `prefix` that longest-matches `prefix`
    /// itself (i.e. is not shadowed by a more-specific route). Returns
    /// `None` after `tries` rejections — which happens when the prefix is
    /// fully covered by more-specifics.
    ///
    /// Trace synthesis uses this so that generated traffic for a flow is
    /// attributed back to the same flow by the measurement pipeline.
    pub fn sample_unshadowed_addr<R: Rng + ?Sized>(
        &self,
        prefix: Prefix,
        rng: &mut R,
        tries: usize,
    ) -> Option<Ipv4Addr> {
        let host_bits = 32 - prefix.len();
        for _ in 0..tries {
            let offset = if host_bits == 0 {
                0
            } else if host_bits == 32 {
                rng.gen::<u32>()
            } else {
                rng.gen_range(0..(1u32 << host_bits))
            };
            let addr_bits = prefix.bits() | offset;
            match self.lpm.lookup(addr_bits) {
                Some((got, _)) if got == prefix => {
                    return Some(Ipv4Addr::from(addr_bits));
                }
                _ => continue,
            }
        }
        None
    }
}

impl FromIterator<RouteEntry> for BgpTable {
    fn from_iter<I: IntoIterator<Item = RouteEntry>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Origin, PeerClass};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(prefix: &str) -> RouteEntry {
        RouteEntry {
            prefix: prefix.parse().unwrap(),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1239, 701],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }
    }

    #[test]
    fn attribution_longest_match() {
        let t = BgpTable::from_entries(vec![entry("10.0.0.0/8"), entry("10.1.0.0/16")]);
        let (p, _) = t.attribute(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(p, "10.1.0.0/16".parse().unwrap());
        let (p, _) = t.attribute(Ipv4Addr::new(10, 2, 0, 1)).unwrap();
        assert_eq!(p, "10.0.0.0/8".parse().unwrap());
        assert!(t.attribute(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = BgpTable::new();
        assert!(t.insert(entry("10.0.0.0/8")).is_none());
        let mut replacement = entry("10.0.0.0/8");
        replacement.as_path = vec![7018];
        let old = t.insert(replacement).unwrap();
        assert_eq!(old.as_path, vec![1239, 701]);
        assert_eq!(t.len(), 1);
        assert!(t.remove("10.0.0.0/8".parse().unwrap()).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn histograms_and_sets() {
        let t = BgpTable::from_entries(vec![
            entry("10.0.0.0/8"),
            entry("10.1.0.0/16"),
            entry("10.2.0.0/16"),
        ]);
        let h = t.length_histogram();
        assert_eq!(h[8], 1);
        assert_eq!(h[16], 2);
        assert_eq!(t.prefix_set().len(), 3);
    }

    #[test]
    fn unshadowed_sampling_avoids_specifics() {
        let t = BgpTable::from_entries(vec![entry("10.0.0.0/8"), entry("10.1.0.0/16")]);
        let mut rng = StdRng::seed_from_u64(1);
        let eight: Prefix = "10.0.0.0/8".parse().unwrap();
        for _ in 0..100 {
            let addr = t.sample_unshadowed_addr(eight, &mut rng, 64).unwrap();
            let (p, _) = t.attribute(addr).unwrap();
            assert_eq!(p, eight, "addr {addr} attributed to {p}");
        }
    }

    #[test]
    fn fully_shadowed_prefix_returns_none() {
        // The /31s cover the whole /30.
        let t = BgpTable::from_entries(vec![
            entry("10.0.0.0/30"),
            entry("10.0.0.0/31"),
            entry("10.0.0.2/31"),
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let covered: Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(t.sample_unshadowed_addr(covered, &mut rng, 128), None);
    }

    #[test]
    fn sampling_host_route() {
        let t = BgpTable::from_entries(vec![entry("10.0.0.1/32")]);
        let mut rng = StdRng::seed_from_u64(3);
        let host: Prefix = "10.0.0.1/32".parse().unwrap();
        assert_eq!(
            t.sample_unshadowed_addr(host, &mut rng, 4),
            Some(Ipv4Addr::new(10, 0, 0, 1))
        );
    }

    #[test]
    fn iter_in_dump_order() {
        let t = BgpTable::from_entries(vec![
            entry("10.1.0.0/16"),
            entry("9.0.0.0/8"),
            entry("10.0.0.0/8"),
        ]);
        let order: Vec<String> = t.iter().map(|e| e.prefix.to_string()).collect();
        assert_eq!(order, vec!["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]);
    }
}
