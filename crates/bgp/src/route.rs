//! RIB entry types.

use core::fmt;
use std::net::Ipv4Addr;

use eleph_net::Prefix;

/// BGP origin attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Learned from an interior protocol.
    Igp,
    /// Learned via EGP.
    Egp,
    /// Redistributed / unknown.
    Incomplete,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "INCOMPLETE",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Origin {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "IGP" => Ok(Origin::Igp),
            "EGP" => Ok(Origin::Egp),
            "INCOMPLETE" => Ok(Origin::Incomplete),
            _ => Err(()),
        }
    }
}

/// Commercial class of the peer a route was learned from.
///
/// The paper's §III observes that elephants overwhelmingly belong to
/// "other Tier-1 ISP providers"; this attribute lets the prefix-length
/// analysis reproduce that breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerClass {
    /// Another tier-1 backbone.
    Tier1,
    /// A regional / tier-2 provider.
    Tier2,
    /// A stub or enterprise customer.
    Stub,
}

impl fmt::Display for PeerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PeerClass::Tier1 => "TIER1",
            PeerClass::Tier2 => "TIER2",
            PeerClass::Stub => "STUB",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PeerClass {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "TIER1" => Ok(PeerClass::Tier1),
            "TIER2" => Ok(PeerClass::Tier2),
            "STUB" => Ok(PeerClass::Stub),
            _ => Err(()),
        }
    }
}

/// One routing-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEntry {
    /// The destination prefix — the paper's flow key.
    pub prefix: Prefix,
    /// BGP next hop.
    pub next_hop: Ipv4Addr,
    /// AS path, neighbour first.
    pub as_path: Vec<u32>,
    /// Origin attribute.
    pub origin: Origin,
    /// Class of the peer this route was learned from.
    pub peer_class: PeerClass,
}

impl RouteEntry {
    /// The originating AS (last element of the AS path).
    pub fn origin_as(&self) -> Option<u32> {
        self.as_path.last().copied()
    }

    /// The neighbour AS (first element of the AS path).
    pub fn neighbor_as(&self) -> Option<u32> {
        self.as_path.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> RouteEntry {
        RouteEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1239, 701, 3356],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }
    }

    #[test]
    fn as_path_accessors() {
        let e = entry();
        assert_eq!(e.neighbor_as(), Some(1239));
        assert_eq!(e.origin_as(), Some(3356));
        let empty = RouteEntry {
            as_path: vec![],
            ..entry()
        };
        assert_eq!(empty.origin_as(), None);
        assert_eq!(empty.neighbor_as(), None);
    }

    #[test]
    fn origin_round_trip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            let s = o.to_string();
            assert_eq!(s.parse::<Origin>().unwrap(), o);
        }
        assert!("BOGUS".parse::<Origin>().is_err());
    }

    #[test]
    fn peer_class_round_trip() {
        for c in [PeerClass::Tier1, PeerClass::Tier2, PeerClass::Stub] {
            let s = c.to_string();
            assert_eq!(s.parse::<PeerClass>().unwrap(), c);
        }
        assert!("TIER9".parse::<PeerClass>().is_err());
    }
}
