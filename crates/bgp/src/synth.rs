//! Synthetic backbone routing tables.
//!
//! The experiments need a RIB shaped like what a Sprint core router held
//! in July 2001. The generator here produces one: ~100k prefixes whose
//! length histogram matches contemporary BGP table reports (the bulk at
//! /24, a broad shoulder at /16–/23, a sparse population of short
//! prefixes including ~100 active /8s, and a thin fringe of /25–/26).
//! Each route carries a plausible AS path and a peer classification used
//! by the paper's §III analysis.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use eleph_net::Prefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{BgpTable, Origin, PeerClass, RouteEntry};

/// Per-length weights approximating a mid-2001 global table (~95k routes).
///
/// Index = prefix length. Derived from contemporaneous BGP table reports:
/// enough /8s that ~100 become active flows in a full-scale workload
/// (the paper's "100 /8 networks became active during the day"), a /16
/// plateau from legacy class B space, the CIDR shoulder at /17–/23, and
/// the /24 bulk.
pub const DEFAULT_LENGTH_WEIGHTS: [u32; 33] = [
    0, 0, 0, 0, 0, 0, 0, 0, // 0-7
    500,   // /8
    6,     // /9
    12,    // /10
    30,    // /11
    80,    // /12
    160,   // /13
    320,   // /14
    550,   // /15
    7500,  // /16
    1500,  // /17
    2600,  // /18
    5200,  // /19
    4400,  // /20
    4100,  // /21
    6100,  // /22
    8200,  // /23
    54000, // /24
    450,   // /25
    250,   // /26
    0, 0, 0, 0, 0, 0, // /27-/32 (filtered from backbone tables)
];

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of routes to generate.
    pub n_prefixes: usize,
    /// RNG seed — the whole table is a pure function of the config.
    pub seed: u64,
    /// Per-length weights (index = prefix length).
    pub length_weights: [u32; 33],
    /// Number of distinct ASes to draw paths from.
    pub n_ases: u32,
    /// Probability that a route is learned from a tier-1 peer.
    pub tier1_fraction: f64,
    /// Probability that a route is learned from a tier-2 peer (the rest
    /// are stubs).
    pub tier2_fraction: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_prefixes: 100_000,
            seed: 0x1239_2001, // Sprint's AS number and the trace year
            length_weights: DEFAULT_LENGTH_WEIGHTS,
            n_ases: 11_000, // ~11k ASes advertised in mid-2001
            tier1_fraction: 0.45,
            tier2_fraction: 0.35,
        }
    }
}

/// Generate a synthetic backbone table.
///
/// Deterministic in the config. Prefixes are unique; nesting (a /24
/// inside a /16) occurs naturally as in real tables. All network
/// addresses fall in unicast space (1.0.0.0–223.255.255.255).
pub fn generate(config: &SynthConfig) -> BgpTable {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_weight: u64 = config.length_weights.iter().map(|&w| w as u64).sum();
    assert!(total_weight > 0, "length_weights must not be all zero");

    let mut seen: HashSet<Prefix> = HashSet::with_capacity(config.n_prefixes);
    let mut table = BgpTable::new();

    // A small pool of "first octets" weighted toward the ranges that were
    // actually allocated in 2001, so /8 collisions are realistic.
    while table.len() < config.n_prefixes {
        let len = sample_length(&mut rng, &config.length_weights, total_weight);
        let prefix = match sample_prefix(&mut rng, len) {
            Some(p) => p,
            None => continue,
        };
        if !seen.insert(prefix) {
            continue;
        }
        let entry = make_entry(&mut rng, prefix, config);
        table.insert(entry);
    }
    table
}

fn sample_length<R: Rng + ?Sized>(rng: &mut R, weights: &[u32; 33], total: u64) -> u8 {
    let mut ticket = rng.gen_range(0..total);
    for (len, &w) in weights.iter().enumerate() {
        let w = w as u64;
        if ticket < w {
            return len as u8;
        }
        ticket -= w;
    }
    unreachable!("ticket < total by construction")
}

fn sample_prefix<R: Rng + ?Sized>(rng: &mut R, len: u8) -> Option<Prefix> {
    // First octet in unicast space, excluding 0, 10 (private), 127
    // (loopback) and multicast/reserved ≥ 224.
    let first = loop {
        let o = rng.gen_range(1u32..224);
        if o != 10 && o != 127 {
            break o;
        }
    };
    let rest: u32 = rng.gen::<u32>() & 0x00ff_ffff;
    let bits = (first << 24) | rest;
    Prefix::from_u32(bits, len).ok()
}

fn make_entry<R: Rng + ?Sized>(rng: &mut R, prefix: Prefix, config: &SynthConfig) -> RouteEntry {
    let path_len = rng.gen_range(1..=5usize);
    let as_path: Vec<u32> = (0..path_len)
        .map(|_| rng.gen_range(1..=config.n_ases))
        .collect();
    let origin = match rng.gen_range(0..10u8) {
        0 => Origin::Incomplete,
        1 => Origin::Egp,
        _ => Origin::Igp,
    };
    let class_ticket: f64 = rng.gen();
    let peer_class = if class_ticket < config.tier1_fraction {
        PeerClass::Tier1
    } else if class_ticket < config.tier1_fraction + config.tier2_fraction {
        PeerClass::Tier2
    } else {
        PeerClass::Stub
    };
    let next_hop = Ipv4Addr::from(rng.gen_range(0xC000_0200u32..0xC000_02FF)); // 192.0.2.x pool
    RouteEntry {
        prefix,
        next_hop,
        as_path,
        origin,
        peer_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        SynthConfig {
            n_prefixes: 20_000,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.len(), b.len());
        for (ea, eb) in a.iter().zip(b.iter()) {
            assert_eq!(ea, eb);
        }
        let c = generate(&SynthConfig {
            seed: 999,
            ..small_config()
        });
        let identical = a.iter().zip(c.iter()).all(|(x, y)| x == y);
        assert!(!identical, "different seeds must differ");
    }

    #[test]
    fn exact_route_count_and_uniqueness() {
        let t = generate(&small_config());
        assert_eq!(t.len(), 20_000);
        let set = t.prefix_set();
        assert_eq!(set.len(), 20_000); // BTreeSet deduplicates: must match
    }

    #[test]
    fn length_histogram_tracks_weights() {
        let t = generate(&SynthConfig {
            n_prefixes: 50_000,
            ..SynthConfig::default()
        });
        let h = t.length_histogram();
        // /24 must dominate by far, /16 must be the secondary mode.
        let max_len = (0..33).max_by_key(|&l| h[l]).unwrap();
        assert_eq!(max_len, 24, "histogram {h:?}");
        assert!(h[16] > h[17], "/16 plateau missing: {h:?}");
        // Nothing outside the weighted range.
        for l in 0..8 {
            assert_eq!(h[l], 0);
        }
        for l in 27..33 {
            assert_eq!(h[l], 0);
        }
        // Enough /8 routes that ~100 become active flows at full scale
        // (the paper's "100 /8 networks became active during the day").
        // Only ~220 distinct /8s exist in unicast space, so the count is
        // capped by collisions.
        assert!(h[8] >= 100 && h[8] <= 221, "/8 count {}", h[8]);
    }

    #[test]
    fn addresses_in_unicast_space() {
        let t = generate(&small_config());
        for e in t.iter() {
            let first = e.prefix.network().octets()[0];
            assert!((1..224).contains(&first), "{}", e.prefix);
            assert_ne!(first, 10, "{}", e.prefix);
            assert_ne!(first, 127, "{}", e.prefix);
        }
    }

    #[test]
    fn as_paths_and_classes_populated() {
        let t = generate(&small_config());
        let mut classes = [0usize; 3];
        for e in t.iter() {
            assert!(!e.as_path.is_empty());
            assert!(e.as_path.iter().all(|&a| a >= 1));
            match e.peer_class {
                PeerClass::Tier1 => classes[0] += 1,
                PeerClass::Tier2 => classes[1] += 1,
                PeerClass::Stub => classes[2] += 1,
            }
        }
        let n = t.len() as f64;
        assert!((classes[0] as f64 / n - 0.45).abs() < 0.02);
        assert!((classes[1] as f64 / n - 0.35).abs() < 0.02);
        assert!((classes[2] as f64 / n - 0.20).abs() < 0.02);
    }

    #[test]
    fn attribution_works_against_synthetic_table() {
        let t = generate(&small_config());
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0;
        for _ in 0..1_000 {
            let addr = Ipv4Addr::from(rng.gen::<u32>());
            if t.attribute(addr).is_some() {
                hits += 1;
            }
        }
        // 20k prefixes cover a meaningful but partial slice of the space.
        assert!(hits > 50, "only {hits} hits");
    }
}
