//! The frozen (read-optimized) routing table: the pipeline's FIB.

use std::net::Ipv4Addr;

use eleph_net::{FlatLpm, LpmView, Prefix};

use crate::{BgpTable, RouteEntry};

/// Dense id of a route within one [`FrozenBgpTable`].
///
/// Ids run `0..len()` in RIB-dump (ascending prefix) order and are
/// stable for the lifetime of the frozen table, so downstream
/// accounting can use plain arrays instead of `Prefix`-keyed hash maps.
pub type RouteId = u32;

/// A [`BgpTable`] snapshot frozen into a flat-array lookup structure.
///
/// This is the router RIB/FIB split applied to the measurement
/// pipeline: [`BgpTable`] stays the updatable source of truth (route
/// churn, insertion, removal), while `FrozenBgpTable` is the immutable
/// data-plane copy every packet is attributed against. Attribution is
/// O(1) with ≤ 2 dependent memory reads ([`eleph_net::FlatLpm`]) and
/// returns a dense [`RouteId`] — no `Prefix → id` hash lookup on the
/// hot path.
///
/// Build one with [`BgpTable::freeze`]; rebuild after mutating the
/// source table.
#[derive(Debug, Clone)]
pub struct FrozenBgpTable {
    flat: FlatLpm<RouteEntry>,
}

impl FrozenBgpTable {
    pub(crate) fn new(table: &BgpTable) -> Self {
        FrozenBgpTable {
            flat: FlatLpm::from_entries(table.iter().map(|e| (e.prefix, e.clone()))),
        }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// Whether the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Longest-prefix attribution of a destination address.
    #[inline]
    pub fn attribute(&self, dst: Ipv4Addr) -> Option<(RouteId, &RouteEntry)> {
        self.attribute_u32(u32::from(dst))
    }

    /// Longest-prefix attribution from host-order bits.
    #[inline]
    pub fn attribute_u32(&self, dst: u32) -> Option<(RouteId, &RouteEntry)> {
        self.flat.lookup_with_id(dst).map(|(id, _, e)| (id, e))
    }

    /// Longest-prefix attribution returning only the dense route id —
    /// the cheapest form, used by the per-packet hot path (no entry
    /// dereference).
    #[inline]
    pub fn attribute_id(&self, dst: u32) -> Option<RouteId> {
        self.flat.lookup_id(dst)
    }

    /// Batched [`FrozenBgpTable::attribute_id`]: attribute every
    /// destination in `dsts` into the matching slot of `out` (`None` =
    /// unroutable).
    ///
    /// This is the per-packet hot path's preferred form when packets are
    /// decoded in chunks (as `eleph_flow::Aggregator` does): the
    /// underlying [`eleph_net::FlatLpm::lookup_many`] overlaps the
    /// table's cache misses across the batch instead of taking one
    /// dependent miss per packet.
    ///
    /// # Panics
    /// If `dsts` and `out` differ in length.
    #[inline]
    pub fn attribute_ids(&self, dsts: &[u32], out: &mut [Option<RouteId>]) {
        self.flat.lookup_many(dsts, out);
    }

    /// The prefix of route `id`.
    #[inline]
    pub fn prefix(&self, id: RouteId) -> Prefix {
        self.flat.prefix(id)
    }

    /// The full entry of route `id`.
    #[inline]
    pub fn route(&self, id: RouteId) -> &RouteEntry {
        self.flat.value(id)
    }

    /// The dense id of exactly `prefix`, if routed.
    pub fn id_of(&self, prefix: Prefix) -> Option<RouteId> {
        self.flat.id_of(prefix)
    }

    /// Iterate routes in RIB-dump order (= [`RouteId`] order).
    pub fn iter(&self) -> impl Iterator<Item = &RouteEntry> {
        self.flat.iter().map(|(_, e)| e)
    }

    /// Bytes of lookup-table memory (cache-footprint diagnostic).
    pub fn table_bytes(&self) -> usize {
        self.flat.table_bytes()
    }
}

impl LpmView<u32> for FrozenBgpTable {
    fn lookup_one(&self, addr: u32) -> Option<u32> {
        self.flat.lookup_id(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<u32>]) {
        self.flat.lookup_many(addrs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Origin, PeerClass};

    fn entry(prefix: &str) -> RouteEntry {
        RouteEntry {
            prefix: prefix.parse().unwrap(),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            as_path: vec![1239, 701],
            origin: Origin::Igp,
            peer_class: PeerClass::Tier1,
        }
    }

    #[test]
    fn agrees_with_live_table() {
        let table = BgpTable::from_entries(vec![
            entry("10.0.0.0/8"),
            entry("10.1.0.0/16"),
            entry("10.1.2.0/25"),
            entry("203.0.113.7/32"),
        ]);
        let frozen = table.freeze();
        assert_eq!(frozen.len(), table.len());
        for addr in [
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 1, 9, 9),
            Ipv4Addr::new(10, 200, 0, 1),
            Ipv4Addr::new(203, 0, 113, 7),
            Ipv4Addr::new(203, 0, 113, 8),
            Ipv4Addr::new(11, 0, 0, 1),
        ] {
            let live = table.attribute(addr).map(|(p, _)| p);
            let froze = frozen.attribute(addr).map(|(id, _)| frozen.prefix(id));
            assert_eq!(live, froze, "addr {addr}");
        }
    }

    #[test]
    fn route_ids_are_dump_order() {
        let table = BgpTable::from_entries(vec![
            entry("10.1.0.0/16"),
            entry("9.0.0.0/8"),
            entry("10.0.0.0/8"),
        ]);
        let frozen = table.freeze();
        let order: Vec<String> = frozen.iter().map(|e| e.prefix.to_string()).collect();
        assert_eq!(order, vec!["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]);
        assert_eq!(frozen.id_of("9.0.0.0/8".parse().unwrap()), Some(0));
        assert_eq!(frozen.id_of("10.1.0.0/16".parse().unwrap()), Some(2));
        assert_eq!(frozen.route(1).prefix, "10.0.0.0/8".parse().unwrap());
        let (id, e) = frozen.attribute(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(e.prefix, "10.1.0.0/16".parse().unwrap());
        assert_eq!(frozen.attribute_id(u32::from(Ipv4Addr::new(10, 1, 2, 3))), Some(2));
    }

    #[test]
    fn batch_attribution_matches_single() {
        let table = BgpTable::from_entries(vec![
            entry("10.0.0.0/8"),
            entry("10.1.0.0/16"),
            entry("10.1.2.0/25"),
            entry("203.0.113.7/32"),
        ]);
        let frozen = table.freeze();
        let dsts: Vec<u32> = [
            "10.1.2.3",
            "10.1.9.9",
            "10.200.0.1",
            "203.0.113.7",
            "203.0.113.8",
            "11.0.0.1",
        ]
        .iter()
        .map(|s| u32::from(s.parse::<Ipv4Addr>().unwrap()))
        .collect();
        let mut out = vec![None; dsts.len()];
        frozen.attribute_ids(&dsts, &mut out);
        for (i, &dst) in dsts.iter().enumerate() {
            assert_eq!(out[i], frozen.attribute_id(dst), "dst {dst:#010x}");
        }
    }

    #[test]
    fn empty_freeze() {
        let frozen = BgpTable::new().freeze();
        assert!(frozen.is_empty());
        assert_eq!(frozen.attribute(Ipv4Addr::new(10, 0, 0, 1)), None);
    }
}
