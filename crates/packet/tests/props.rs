//! Property tests: build → parse is the identity, checksums always verify
//! on well-formed packets and fail under corruption, and pcap round-trips
//! are lossless.

use std::net::Ipv4Addr;

use eleph_packet::pcap::{PcapReader, PcapWriter, TsResolution};
use eleph_packet::{parse_meta, IpProtocol, LinkType, PacketBuilder, TcpFlags};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn udp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let bytes = PacketBuilder::udp()
            .src(src, sport)
            .dst(dst, dport)
            .payload(&payload)
            .build_ethernet();
        let meta = parse_meta(LinkType::Ethernet, &bytes, 7).unwrap();
        prop_assert_eq!(meta.src, src);
        prop_assert_eq!(meta.dst, dst);
        prop_assert_eq!(meta.src_port, sport);
        prop_assert_eq!(meta.dst_port, dport);
        prop_assert_eq!(meta.proto, IpProtocol::Udp);
        prop_assert_eq!(meta.wire_len as usize, bytes.len());
    }

    #[test]
    fn tcp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sport in any::<u16>(), dport in any::<u16>(),
        flags in 0u8..=0x3f,
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let bytes = PacketBuilder::tcp()
            .src(src, sport)
            .dst(dst, dport)
            .tcp_flags(TcpFlags(flags))
            .payload(&payload)
            .build_ipv4();
        let meta = parse_meta(LinkType::RawIp, &bytes, 0).unwrap();
        prop_assert_eq!(meta.src, src);
        prop_assert_eq!(meta.dst, dst);
        prop_assert_eq!(meta.src_port, sport);
        prop_assert_eq!(meta.dst_port, dport);
        prop_assert_eq!(meta.proto, IpProtocol::Tcp);
    }

    #[test]
    fn built_ipv4_checksums_always_verify(
        src in arb_addr(), dst in arb_addr(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = PacketBuilder::udp().src(src, 1).dst(dst, 2).payload(&payload).build_ipv4();
        let ip = eleph_packet::Ipv4Packet::parse(&bytes).unwrap();
        prop_assert!(ip.verify_checksum());
        let udp = eleph_packet::UdpDatagram::parse(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum(src, dst));
    }

    #[test]
    fn single_byte_corruption_never_panics(
        src in arb_addr(), dst in arb_addr(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        corrupt_at in any::<prop::sample::Index>(),
        corrupt_with in 1u8..,
    ) {
        let mut bytes = PacketBuilder::udp().src(src, 9).dst(dst, 10).payload(&payload).build_ethernet();
        let idx = corrupt_at.index(bytes.len());
        bytes[idx] ^= corrupt_with;
        // Must cleanly parse or cleanly fail — never panic.
        let _ = parse_meta(LinkType::Ethernet, &bytes, 0);
    }

    #[test]
    fn truncation_never_panics(
        src in arb_addr(), dst in arb_addr(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        keep in any::<prop::sample::Index>(),
    ) {
        let bytes = PacketBuilder::tcp().src(src, 9).dst(dst, 10).payload(&payload).build_ethernet();
        let keep = keep.index(bytes.len() + 1);
        let _ = parse_meta(LinkType::Ethernet, &bytes[..keep], 0);
    }

    #[test]
    fn ipv4_header_corruption_detected_by_checksum(
        src in arb_addr(), dst in arb_addr(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let mut bytes = PacketBuilder::udp().src(src, 1).dst(dst, 2).payload_len(32).build_ipv4();
        bytes[byte] ^= 1 << bit;
        match eleph_packet::Ipv4Packet::parse(&bytes) {
            // If it still parses structurally, the checksum must notice.
            Ok(ip) => prop_assert!(!ip.verify_checksum()),
            Err(_) => {} // structural rejection is fine too
        }
    }

    #[test]
    fn pcap_round_trip_preserves_everything(
        records in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)),
            0..32,
        ),
        nano in any::<bool>(),
    ) {
        let resolution = if nano { TsResolution::Nano } else { TsResolution::Micro };
        let mut buf = Vec::new();
        let mut w = PcapWriter::with_options(&mut buf, 1, resolution, 65535).unwrap();
        for (ts, data) in &records {
            // Keep timestamps in a range that cannot overflow the u32
            // seconds field of the classic format.
            let ts = ts % (u64::from(u32::MAX) * 1_000_000_000);
            w.write_record(ts, data.len() as u32, data).unwrap();
        }
        w.finish().unwrap();

        let r = PcapReader::new(&buf[..]).unwrap();
        let got: eleph_packet::Result<Vec<_>> = r.collect();
        let got = got.unwrap();
        prop_assert_eq!(got.len(), records.len());
        for ((ts, data), rec) in records.iter().zip(&got) {
            let ts = ts % (u64::from(u32::MAX) * 1_000_000_000);
            let expect_ts = match resolution {
                TsResolution::Nano => ts,
                TsResolution::Micro => (ts / 1_000) * 1_000,
            };
            prop_assert_eq!(rec.ts_ns, expect_ts);
            prop_assert_eq!(&rec.data[..], &data[..]);
            prop_assert_eq!(rec.orig_len as usize, data.len());
        }
    }
}
