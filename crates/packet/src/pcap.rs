//! Classic libpcap capture files.
//!
//! Implements the format described at
//! <https://wiki.wireshark.org/Development/LibpcapFileFormat>: a 24-byte
//! global header (magic, version, snaplen, linktype) followed by records,
//! each with a 16-byte header (seconds, sub-seconds, captured length,
//! original length). Both byte orders and both timestamp resolutions
//! (microseconds, magic `0xa1b2c3d4`; nanoseconds, magic `0xa1b23c4d`) are
//! read; the writer emits little-endian files at a chosen resolution.
//!
//! Timestamps are normalised to **nanoseconds since the epoch** (`u64`) on
//! both paths, so the rest of the system never sees the resolution.

use std::io::{Read, Write};

use bytes::Bytes;

use crate::{PacketError, Result};

/// Magic number for microsecond-resolution files.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic number for nanosecond-resolution files.
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;

/// Captured lengths above this are treated as file corruption rather than
/// honoured with a giant allocation.
pub const MAX_SANE_CAPLEN: u32 = 1 << 26; // 64 MiB

/// Timestamp resolution of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsResolution {
    /// Microsecond sub-second field (classic).
    Micro,
    /// Nanosecond sub-second field.
    Nano,
}

/// Parsed global header of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapHeader {
    /// Timestamp resolution encoded by the magic.
    pub resolution: TsResolution,
    /// Whether the file's byte order is opposite to this host's reader
    /// (i.e. the magic arrived byte-swapped).
    pub swapped: bool,
    /// Snap length: maximum captured bytes per packet.
    pub snaplen: u32,
    /// Link type (1 = Ethernet, 101 = raw IP, ...).
    pub linktype: u32,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in nanoseconds since the epoch.
    pub ts_ns: u64,
    /// Original on-the-wire length (≥ `data.len()` when truncated by the
    /// snap length). Bandwidth accounting must use this, not the captured
    /// length.
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Bytes,
}

/// Header fields of a record read by [`PcapReader::next_record_into`]
/// (the captured bytes land in the caller's buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Capture timestamp in nanoseconds since the epoch.
    pub ts_ns: u64,
    /// Original on-the-wire length (≥ captured length when snapped).
    pub orig_len: u32,
}

/// Streaming writer for little-endian capture files.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    resolution: TsResolution,
    snaplen: u32,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer with microsecond resolution and a 64 KiB snap length.
    pub fn new(out: W, linktype: u32) -> Result<Self> {
        Self::with_options(out, linktype, TsResolution::Micro, 65535)
    }

    /// Create a writer choosing resolution and snap length.
    pub fn with_options(
        mut out: W,
        linktype: u32,
        resolution: TsResolution,
        snaplen: u32,
    ) -> Result<Self> {
        let magic = match resolution {
            TsResolution::Micro => MAGIC_MICROS,
            TsResolution::Nano => MAGIC_NANOS,
        };
        out.write_all(&magic.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            resolution,
            snaplen,
            records: 0,
        })
    }

    /// Append one packet. `data` is truncated to the snap length; the
    /// original length recorded is `orig_len` (pass `data.len()` when the
    /// packet is complete), raised to the captured length if it claims
    /// less — a record capturing more bytes than existed on the wire is
    /// not representable, and readers (including ours) treat
    /// `orig_len ≥ caplen` as an invariant of a well-formed file.
    ///
    /// # Errors
    /// [`PacketError::UnrepresentableTimestamp`] when `ts_ns` exceeds
    /// the format's 32-bit seconds field (≈ year 2106) — previously the
    /// seconds were silently truncated, corrupting the written file's
    /// timeline.
    pub fn write_record(&mut self, ts_ns: u64, orig_len: u32, data: &[u8]) -> Result<()> {
        let captured = data.len().min(self.snaplen as usize);
        let secs = u32::try_from(ts_ns / 1_000_000_000)
            .map_err(|_| PacketError::UnrepresentableTimestamp(ts_ns))?;
        let orig_len = orig_len.max(captured as u32);
        let subsec = match self.resolution {
            TsResolution::Micro => (ts_ns % 1_000_000_000) / 1_000,
            TsResolution::Nano => ts_ns % 1_000_000_000,
        } as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&subsec.to_le_bytes())?;
        self.out.write_all(&(captured as u32).to_le_bytes())?;
        self.out.write_all(&orig_len.to_le_bytes())?;
        self.out.write_all(&data[..captured])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for capture files of either byte order and resolution.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    header: PcapHeader,
}

impl<R: Read> PcapReader<R> {
    /// Parse the global header and position the reader at the first record.
    pub fn new(mut input: R) -> Result<Self> {
        let mut head = [0u8; 24];
        input.read_exact(&mut head)?;
        let magic_le = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        let (resolution, swapped) = match magic_le {
            MAGIC_MICROS => (TsResolution::Micro, false),
            MAGIC_NANOS => (TsResolution::Nano, false),
            m if m.swap_bytes() == MAGIC_MICROS => (TsResolution::Micro, true),
            m if m.swap_bytes() == MAGIC_NANOS => (TsResolution::Nano, true),
            m => return Err(PacketError::BadMagic(m)),
        };
        let u32_at = |bytes: &[u8]| {
            let raw = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
            if swapped {
                raw.swap_bytes()
            } else {
                raw
            }
        };
        let snaplen = u32_at(&head[16..20]);
        let linktype = u32_at(&head[20..24]);
        Ok(PcapReader {
            input,
            header: PcapHeader {
                resolution,
                swapped,
                snaplen,
                linktype,
            },
        })
    }

    /// The parsed global header.
    pub fn header(&self) -> PcapHeader {
        self.header
    }

    /// Read the next record; `Ok(None)` on clean end-of-file.
    ///
    /// Allocates a fresh buffer per record. Hot loops should prefer
    /// [`PcapReader::next_record_into`], which reuses one buffer across
    /// the whole stream.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut data = Vec::new();
        Ok(self.next_record_into(&mut data)?.map(|head| PcapRecord {
            ts_ns: head.ts_ns,
            orig_len: head.orig_len,
            data: Bytes::from(data),
        }))
    }

    /// Read the next record's bytes into `data` (cleared and refilled),
    /// returning its header; `Ok(None)` on clean end-of-file.
    ///
    /// This is the zero-allocation streaming form: after the buffer has
    /// grown to the stream's largest capture length, record iteration
    /// allocates nothing.
    pub fn next_record_into(&mut self, data: &mut Vec<u8>) -> Result<Option<RecordHeader>> {
        let mut rec_head = [0u8; 16];
        match read_exact_or_eof(&mut self.input, &mut rec_head)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial(got) => {
                return Err(PacketError::Truncated { needed: 16, got });
            }
            ReadOutcome::Full => {}
        }
        let (head, caplen) =
            decode_record_header(&rec_head, self.header.swapped, self.header.resolution)?;
        data.clear();
        data.resize(caplen as usize, 0);
        self.input.read_exact(data)?;
        Ok(Some(head))
    }
}

/// Decode one 16-byte record header, shared by the streaming reader and
/// the slice cursor so their interpretations cannot diverge. Returns
/// the normalised header and the captured length.
fn decode_record_header(
    rec_head: &[u8; 16],
    swapped: bool,
    resolution: TsResolution,
) -> Result<(RecordHeader, u32)> {
    let u32_at = |bytes: &[u8]| {
        let raw = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        if swapped {
            raw.swap_bytes()
        } else {
            raw
        }
    };
    let secs = u32_at(&rec_head[0..4]) as u64;
    let subsec = u32_at(&rec_head[4..8]) as u64;
    let caplen = u32_at(&rec_head[8..12]);
    let orig_len = u32_at(&rec_head[12..16]);
    if caplen > MAX_SANE_CAPLEN {
        return Err(PacketError::ImplausibleCaptureLen(caplen));
    }
    let ts_ns = match resolution {
        TsResolution::Micro => secs * 1_000_000_000 + subsec * 1_000,
        TsResolution::Nano => secs * 1_000_000_000 + subsec,
    };
    Ok((RecordHeader { ts_ns, orig_len }, caplen))
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Zero-copy record cursor over an in-memory (or memory-mapped) capture.
///
/// Where [`PcapReader`] copies each record's bytes out of a stream,
/// `PcapSlice` hands back sub-slices of the input buffer — record
/// iteration allocates and copies nothing. This is what lets
/// aggregation shard one capture across threads: every worker reads
/// records straight out of the shared buffer.
#[derive(Debug, Clone)]
pub struct PcapSlice<'a> {
    data: &'a [u8],
    header: PcapHeader,
    pos: usize,
}

impl<'a> PcapSlice<'a> {
    /// Parse the global header and position the cursor at the first
    /// record.
    pub fn new(data: &'a [u8]) -> Result<Self> {
        let mut prefix = data;
        let reader = PcapReader::new(&mut prefix)?;
        let header = reader.header();
        Ok(PcapSlice {
            data,
            header,
            pos: 24,
        })
    }

    /// The parsed global header.
    pub fn header(&self) -> PcapHeader {
        self.header
    }

    /// Byte offset of the next unread record.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decode up to `max` records into `out` (appended), returning how
    /// many were decoded; fewer than `max` means clean end-of-input.
    ///
    /// This is the two-cursor form of the scan: a *scan-ahead* cursor
    /// walks the raw bytes roughly [`SCAN_AHEAD_BYTES`] in front of the
    /// decode position, requesting one cache line per touch, while the
    /// *consume* cursor decodes record headers behind it. The header
    /// walk itself is a dependent chain (each record's offset comes from
    /// the previous record's captured length), so a cold miss on every
    /// header serialises the whole scan — warming the lines ahead of
    /// the chain is what keeps the shard-splitting pass of
    /// `eleph_flow::aggregate_pcap_parallel` off the memory-latency
    /// floor. With the `prefetch` cargo feature the touches are real
    /// `prefetcht0` hints; without it they are forced one-byte reads,
    /// which the out-of-order window hides almost as well.
    ///
    /// Errors abort the batch exactly like [`PcapSlice::next_record`]:
    /// records already appended to `out` are valid, the cursor stops at
    /// the damaged record.
    pub fn next_batch(
        &mut self,
        max: usize,
        out: &mut Vec<(RecordHeader, &'a [u8])>,
    ) -> Result<usize> {
        let mut touched = self.pos;
        let mut n = 0;
        while n < max {
            let target = (self.pos + SCAN_AHEAD_BYTES).min(self.data.len());
            while touched < target {
                touch_ahead(&self.data[touched]);
                touched += CACHE_LINE;
            }
            match self.next_record()? {
                Some(rec) => {
                    out.push(rec);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// [`PcapSlice::next_batch`] yielding byte *spans* (offsets into the
    /// input buffer) instead of borrowed sub-slices.
    ///
    /// Spans are what cross threads: a slice borrow ties the batch to
    /// the cursor's lifetime, but a `(header, offset range)` pair is
    /// `'static` — a framer thread can scan ahead over a shared
    /// (`Arc`ed) capture and hand record spans to parser threads, each
    /// of which resolves its spans against its own clone of the buffer.
    /// No record bytes are copied at any point (see
    /// [`crate::pool::PooledReader`]).
    ///
    /// Same scan-ahead warming and same error contract as
    /// [`PcapSlice::next_batch`]: spans already appended to `out` are
    /// valid, the cursor stops at the damaged record.
    pub fn next_batch_spans(
        &mut self,
        max: usize,
        out: &mut Vec<(RecordHeader, std::ops::Range<usize>)>,
    ) -> Result<usize> {
        let mut touched = self.pos;
        let mut n = 0;
        while n < max {
            let target = (self.pos + SCAN_AHEAD_BYTES).min(self.data.len());
            while touched < target {
                touch_ahead(&self.data[touched]);
                touched += CACHE_LINE;
            }
            let body = self.pos + 16;
            match self.next_record()? {
                Some((head, data)) => {
                    out.push((head, body..body + data.len()));
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// The next record's header and its captured bytes, borrowed from
    /// the input; `Ok(None)` on clean end-of-input.
    pub fn next_record(&mut self) -> Result<Option<(RecordHeader, &'a [u8])>> {
        let remaining = &self.data[self.pos..];
        if remaining.is_empty() {
            return Ok(None);
        }
        let rec_head: &[u8; 16] = match remaining.get(..16).and_then(|h| h.try_into().ok()) {
            Some(head) => head,
            None => {
                return Err(PacketError::Truncated {
                    needed: 16,
                    got: remaining.len(),
                });
            }
        };
        let (head, caplen) =
            decode_record_header(rec_head, self.header.swapped, self.header.resolution)?;
        let body = &remaining[16..];
        if body.len() < caplen as usize {
            // Same failure class the streaming reader reports for a
            // record body cut short by end-of-file.
            return Err(PacketError::Io("record body truncated".to_string()));
        }
        let data = &body[..caplen as usize];
        self.pos += 16 + caplen as usize;
        Ok(Some((head, data)))
    }
}

/// How far the scan-ahead cursor of [`PcapSlice::next_batch`] runs in
/// front of the decode position. A few records' worth: far enough that
/// the touched lines arrive before the consume cursor needs them, near
/// enough not to thrash the L1.
const SCAN_AHEAD_BYTES: usize = 4096;

/// Stride of the scan-ahead touches — one per cache line.
const CACHE_LINE: usize = 64;

/// Ask the memory system to warm the cache line holding `byte`.
#[cfg(feature = "prefetch")]
#[inline(always)]
#[allow(unsafe_code)]
fn touch_ahead(byte: &u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults and performs no
    // observable memory access.
    unsafe {
        core::arch::x86_64::_mm_prefetch(
            byte as *const u8 as *const i8,
            core::arch::x86_64::_MM_HINT_T0,
        );
    }
    // No stable prefetch intrinsic on other architectures: fall back to
    // the forced read the feature-off build uses, so enabling the
    // feature never loses the scan-ahead warming.
    #[cfg(not(target_arch = "x86_64"))]
    let _ = std::hint::black_box(*byte);
}

/// Warm the cache line holding `byte` with a forced (non-elidable)
/// read — the safe-code stand-in for a prefetch instruction; the
/// out-of-order window hides the load's latency because nothing
/// consumes its value.
#[cfg(not(feature = "prefetch"))]
#[inline(always)]
fn touch_ahead(byte: &u8) {
    let _ = std::hint::black_box(*byte);
}

enum ReadOutcome {
    Full,
    Partial(usize),
    Eof,
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF)
/// from "some bytes then EOF" (truncated file).
fn read_exact_or_eof<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(resolution: TsResolution) {
        let mut buf = Vec::new();
        {
            let mut w =
                PcapWriter::with_options(&mut buf, 1, resolution, 65535).unwrap();
            w.write_record(1_000_000_123_456_789, 100, &[1, 2, 3, 4]).unwrap();
            w.write_record(1_000_000_999_999_000, 4, &[9, 8, 7, 6]).unwrap();
            assert_eq!(w.records_written(), 2);
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.header().linktype, 1);
        assert_eq!(r.header().resolution, resolution);
        assert!(!r.header().swapped);

        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.orig_len, 100);
        assert_eq!(&rec.data[..], &[1, 2, 3, 4]);
        match resolution {
            TsResolution::Nano => assert_eq!(rec.ts_ns, 1_000_000_123_456_789),
            // Microsecond files round sub-µs digits away.
            TsResolution::Micro => assert_eq!(rec.ts_ns, 1_000_000_123_456_000),
        }
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(&rec.data[..], &[9, 8, 7, 6]);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn micro_round_trip() {
        round_trip(TsResolution::Micro);
    }

    #[test]
    fn nano_round_trip() {
        round_trip(TsResolution::Nano);
    }

    #[test]
    fn reads_big_endian_files() {
        // Hand-build a big-endian microsecond file with one 2-byte record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&1500u32.to_be_bytes());
        buf.extend_from_slice(&101u32.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // secs
        buf.extend_from_slice(&5u32.to_be_bytes()); // µs
        buf.extend_from_slice(&2u32.to_be_bytes()); // caplen
        buf.extend_from_slice(&60u32.to_be_bytes()); // origlen
        buf.extend_from_slice(&[0xAA, 0xBB]);

        let mut r = PcapReader::new(&buf[..]).unwrap();
        let h = r.header();
        assert!(h.swapped);
        assert_eq!(h.snaplen, 1500);
        assert_eq!(h.linktype, 101);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_ns, 7_000_005_000);
        assert_eq!(rec.orig_len, 60);
        assert_eq!(&rec.data[..], &[0xAA, 0xBB]);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::with_options(&mut buf, 1, TsResolution::Micro, 8).unwrap();
        let payload = [0x55u8; 32];
        w.write_record(0, 32, &payload).unwrap();
        w.finish().unwrap();

        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.data.len(), 8);
        assert_eq!(rec.orig_len, 32);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&buf[..]).unwrap_err(),
            PacketError::BadMagic(0)
        ));
    }

    #[test]
    fn truncated_global_header_rejected() {
        let buf = [0u8; 10];
        assert!(matches!(PcapReader::new(&buf[..]).unwrap_err(), PacketError::Io(_)));
    }

    #[test]
    fn truncated_record_header_detected() {
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf, 1).unwrap();
        w.finish().unwrap();
        buf.extend_from_slice(&[0u8; 7]); // garbage partial record header
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_record().unwrap_err(),
            PacketError::Truncated { needed: 16, got: 7 }
        ));
    }

    #[test]
    fn truncated_record_body_detected() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(0, 4, &[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_record().unwrap_err(), PacketError::Io(_)));
    }

    #[test]
    fn implausible_caplen_rejected_without_allocation() {
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf, 1).unwrap();
        w.finish().unwrap();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // caplen = 4 GiB
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_record().unwrap_err(),
            PacketError::ImplausibleCaptureLen(_)
        ));
    }

    #[test]
    fn buffer_reusing_read_matches_allocating_read() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(1_000_000, 8, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        w.write_record(2_000_000, 100, &[9, 8]).unwrap(); // snapped record
        w.write_record(3_000_000, 3, &[7, 7, 7]).unwrap();
        w.finish().unwrap();

        let mut alloc_reader = PcapReader::new(&buf[..]).unwrap();
        let mut reuse_reader = PcapReader::new(&buf[..]).unwrap();
        let mut scratch = Vec::new();
        loop {
            let a = alloc_reader.next_record().unwrap();
            let b = reuse_reader.next_record_into(&mut scratch).unwrap();
            match (a, b) {
                (Some(rec), Some(head)) => {
                    assert_eq!(rec.ts_ns, head.ts_ns);
                    assert_eq!(rec.orig_len, head.orig_len);
                    assert_eq!(&rec.data[..], &scratch[..]);
                }
                (None, None) => break,
                (a, b) => panic!("readers disagree: {a:?} vs {b:?}"),
            }
        }
        // The buffer grew once and was reused across records.
        assert!(scratch.capacity() >= 8);
    }

    #[test]
    fn slice_cursor_matches_streaming_reader() {
        let mut buf = Vec::new();
        let mut w =
            PcapWriter::with_options(&mut buf, 101, TsResolution::Nano, 65535).unwrap();
        w.write_record(1_234_567_890, 64, &[0xAB; 40]).unwrap();
        w.write_record(2_000_000_001, 2, &[1, 2]).unwrap();
        w.write_record(3_000_000_002, 0, &[]).unwrap();
        w.finish().unwrap();

        let mut stream = PcapReader::new(&buf[..]).unwrap();
        let mut slice = PcapSlice::new(&buf[..]).unwrap();
        assert_eq!(stream.header(), slice.header());
        loop {
            let a = stream.next_record().unwrap();
            let b = slice.next_record().unwrap();
            match (a, b) {
                (Some(rec), Some((head, data))) => {
                    assert_eq!(rec.ts_ns, head.ts_ns);
                    assert_eq!(rec.orig_len, head.orig_len);
                    assert_eq!(&rec.data[..], data);
                }
                (None, None) => break,
                (a, b) => panic!("readers disagree: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(slice.position(), buf.len());
    }

    #[test]
    fn writer_rejects_unrepresentable_timestamps() {
        // Regression: seconds used to be truncated with `as u32`,
        // silently wrapping timestamps past ~year 2106.
        let max_ok = u64::from(u32::MAX) * 1_000_000_000 + 999_999_999;
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(max_ok, 1, &[0]).unwrap();
        assert!(matches!(
            w.write_record(max_ok + 1, 1, &[0]).unwrap_err(),
            PacketError::UnrepresentableTimestamp(ns) if ns == max_ok + 1
        ));
        assert_eq!(w.records_written(), 1);
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        // The accepted boundary record round-trips without wrapping
        // (microsecond resolution rounds the sub-µs digits away).
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_ns, u64::from(u32::MAX) * 1_000_000_000 + 999_999_000);
    }

    #[test]
    fn writer_clamps_orig_len_to_captured() {
        // Regression: `orig_len < captured` used to be written verbatim,
        // producing records no reader should trust.
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(0, 2, &[1, 2, 3, 4, 5]).unwrap();
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.data.len(), 5);
        assert_eq!(rec.orig_len, 5, "orig_len must cover the captured bytes");
    }

    #[test]
    fn batch_scan_matches_single_record_scan() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::with_options(&mut buf, 101, TsResolution::Nano, 65535).unwrap();
        for i in 0..300u64 {
            let len = (i % 97) as usize;
            w.write_record(i * 1_000, len as u32, &vec![i as u8; len]).unwrap();
        }
        w.finish().unwrap();

        for batch_size in [1usize, 7, 64, 1000] {
            let mut single = PcapSlice::new(&buf[..]).unwrap();
            let mut batched = PcapSlice::new(&buf[..]).unwrap();
            let mut got: Vec<(RecordHeader, &[u8])> = Vec::new();
            loop {
                let n = batched.next_batch(batch_size, &mut got).unwrap();
                if n < batch_size {
                    break;
                }
            }
            assert_eq!(batched.position(), buf.len());
            let mut i = 0;
            while let Some((head, data)) = single.next_record().unwrap() {
                assert_eq!(got[i], (head, data), "batch {batch_size}, record {i}");
                i += 1;
            }
            assert_eq!(got.len(), i, "batch {batch_size}");
        }
    }

    #[test]
    fn batch_scan_surfaces_errors_after_valid_prefix() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(0, 4, &[1, 2, 3, 4]).unwrap();
        w.write_record(1_000, 4, &[5, 6, 7, 8]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 2); // cut the second record's body
        let mut cursor = PcapSlice::new(&buf[..]).unwrap();
        let mut out = Vec::new();
        assert!(cursor.next_batch(16, &mut out).is_err());
        // The valid prefix was still decoded.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_cursor_detects_truncation() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        w.write_record(0, 4, &[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();

        let mut cut_header = PcapSlice::new(&buf[..buf.len() - 15]).unwrap();
        assert!(matches!(
            cut_header.next_record().unwrap_err(),
            PacketError::Truncated { needed: 16, .. }
        ));
        let mut cut_body = PcapSlice::new(&buf[..buf.len() - 2]).unwrap();
        assert!(matches!(cut_body.next_record().unwrap_err(), PacketError::Io(_)));
    }

    #[test]
    fn iterator_interface() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 1).unwrap();
        for i in 0..5u8 {
            w.write_record(u64::from(i) * 1_000, 1, &[i]).unwrap();
        }
        w.finish().unwrap();
        let r = PcapReader::new(&buf[..]).unwrap();
        let records: Result<Vec<_>> = r.collect();
        let records = records.unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(&records[3].data[..], &[3]);
    }
}
