//! Packet and capture-file error types.

use core::fmt;

/// Everything that can go wrong while parsing packets or pcap files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer shorter than the structure requires.
    Truncated {
        /// Bytes required for the structure being parsed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// An IPv4 packet whose version nibble is not 4.
    BadVersion(u8),
    /// An IPv4 IHL below 5 (20 bytes) or beyond the buffer.
    BadHeaderLen(u8),
    /// A checksum failed verification.
    BadChecksum {
        /// Protocol whose checksum failed ("ipv4", "tcp", "udp").
        what: &'static str,
    },
    /// An Ethernet frame whose ethertype we do not handle.
    UnsupportedEtherType(u16),
    /// An IP protocol number the metadata extractor does not handle.
    UnsupportedProtocol(u8),
    /// A pcap file with an unrecognised magic number.
    BadMagic(u32),
    /// A pcap record header whose captured length is implausible.
    ImplausibleCaptureLen(u32),
    /// A timestamp that does not fit the pcap record header's 32-bit
    /// seconds field (nanoseconds since the epoch shown).
    UnrepresentableTimestamp(u64),
    /// A pcap link type the metadata extractor does not handle.
    UnsupportedLinkType(u32),
    /// An underlying I/O failure (message-only so the error stays `Eq`).
    Io(String),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { needed, got } => {
                write!(f, "truncated: need {needed} bytes, have {got}")
            }
            PacketError::BadVersion(v) => write!(f, "IP version {v}, expected 4"),
            PacketError::BadHeaderLen(ihl) => write!(f, "bad IPv4 IHL {ihl}"),
            PacketError::BadChecksum { what } => write!(f, "{what} checksum mismatch"),
            PacketError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            PacketError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            PacketError::BadMagic(m) => write!(f, "unrecognised pcap magic {m:#010x}"),
            PacketError::ImplausibleCaptureLen(l) => {
                write!(f, "implausible pcap capture length {l}")
            }
            PacketError::UnrepresentableTimestamp(ns) => {
                write!(f, "timestamp {ns} ns overflows the pcap 32-bit seconds field")
            }
            PacketError::UnsupportedLinkType(t) => write!(f, "unsupported pcap linktype {t}"),
            PacketError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PacketError {}

impl From<std::io::Error> for PacketError {
    fn from(e: std::io::Error) -> Self {
        PacketError::Io(e.to_string())
    }
}

/// Check that `buf` holds at least `needed` bytes.
#[inline]
pub(crate) fn check_len(buf: &[u8], needed: usize) -> crate::Result<()> {
    if buf.len() < needed {
        Err(PacketError::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_len_boundary() {
        assert!(check_len(&[0; 4], 4).is_ok());
        assert_eq!(
            check_len(&[0; 3], 4),
            Err(PacketError::Truncated { needed: 4, got: 3 })
        );
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: PacketError = io.into();
        assert!(matches!(e, PacketError::Io(_)));
        assert!(e.to_string().contains("eof"));
    }

    #[test]
    fn displays_are_specific() {
        assert!(PacketError::BadVersion(6).to_string().contains('6'));
        assert!(PacketError::BadMagic(0xdead_beef).to_string().contains("0xdeadbeef"));
        assert!(PacketError::UnsupportedEtherType(0x86dd).to_string().contains("0x86dd"));
    }
}
