//! Per-packet metadata extraction and the high-level packet builder.

use std::net::Ipv4Addr;

use crate::ethernet::{self, EthernetFrame, EtherType, MacAddr};
use crate::ipv4::{self, IpProtocol, Ipv4Packet};
use crate::pcap::PcapRecord;
use crate::tcp::{self, TcpFlags, TcpSegment};
use crate::udp::{self, UdpDatagram};
use crate::{PacketError, Result};

/// Capture link types the metadata extractor understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// DLT_EN10MB (1): packets begin with an Ethernet II header.
    Ethernet,
    /// DLT_RAW (101): packets begin directly with the IP header.
    RawIp,
}

impl LinkType {
    /// The libpcap linktype code.
    pub fn code(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
        }
    }

    /// Decode a libpcap linktype code.
    pub fn from_code(code: u32) -> Result<Self> {
        match code {
            1 => Ok(LinkType::Ethernet),
            101 | 228 => Ok(LinkType::RawIp),
            other => Err(PacketError::UnsupportedLinkType(other)),
        }
    }
}

/// Everything the flow pipeline needs to know about one packet.
///
/// This is the record type the paper's methodology consumes: destination
/// address (for BGP-prefix attribution), wire length (for bandwidth), and
/// timestamp (for interval assignment). Ports and protocol are carried for
/// application breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Capture timestamp, nanoseconds since the epoch.
    pub ts_ns: u64,
    /// IPv4 source address.
    pub src: Ipv4Addr,
    /// IPv4 destination address (the flow key input).
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProtocol,
    /// Source port, 0 for non-TCP/UDP.
    pub src_port: u16,
    /// Destination port, 0 for non-TCP/UDP.
    pub dst_port: u16,
    /// Original on-the-wire length in bytes (IP layer and below included).
    pub wire_len: u32,
}

/// Extract [`PacketMeta`] from raw capture bytes.
///
/// The IPv4 header checksum is verified: a monitor must never attribute
/// a packet whose addresses may be corrupt (the flow key would be wrong).
/// Transport checksums are *not* verified — payload corruption does not
/// affect bandwidth accounting, and capture snapping makes them
/// unverifiable in general.
///
/// `wire_len` is taken from the buffer length; when parsing snapped pcap
/// records use [`parse_record_meta`], which substitutes the record's
/// original length.
pub fn parse_meta(link: LinkType, buf: &[u8], ts_ns: u64) -> Result<PacketMeta> {
    let (ip_bytes, wire_len) = match link {
        LinkType::Ethernet => {
            let frame = EthernetFrame::parse(buf)?;
            match frame.ethertype() {
                EtherType::Ipv4 => (frame.payload(), buf.len() as u32),
                other => return Err(PacketError::UnsupportedEtherType(other.into())),
            }
        }
        LinkType::RawIp => (buf, buf.len() as u32),
    };
    let ip = Ipv4Packet::parse(ip_bytes)?;
    if !ip.verify_checksum() {
        return Err(PacketError::BadChecksum { what: "ipv4" });
    }
    let (src_port, dst_port) = match ip.protocol() {
        IpProtocol::Tcp => {
            let seg = TcpSegment::parse(ip.payload())?;
            (seg.src_port(), seg.dst_port())
        }
        IpProtocol::Udp => {
            let d = UdpDatagram::parse(ip.payload())?;
            (d.src_port(), d.dst_port())
        }
        _ => (0, 0),
    };
    Ok(PacketMeta {
        ts_ns,
        src: ip.src(),
        dst: ip.dst(),
        proto: ip.protocol(),
        src_port,
        dst_port,
        wire_len,
    })
}

/// Extract metadata from a pcap record, preferring the record's original
/// length over the (possibly snapped) captured length for bandwidth
/// accounting.
pub fn parse_record_meta(link: LinkType, record: &PcapRecord) -> Result<PacketMeta> {
    let head = crate::pcap::RecordHeader {
        ts_ns: record.ts_ns,
        orig_len: record.orig_len,
    };
    parse_buf_meta(link, &record.data, &head)
}

/// [`parse_record_meta`] for the buffer-reusing read path
/// ([`crate::pcap::PcapReader::next_record_into`]): captured bytes in
/// `data`, timestamp and original length from `head`.
pub fn parse_buf_meta(
    link: LinkType,
    data: &[u8],
    head: &crate::pcap::RecordHeader,
) -> Result<PacketMeta> {
    let mut meta = parse_meta(link, data, head.ts_ns)?;
    meta.wire_len = head.orig_len;
    Ok(meta)
}

/// Fluent builder producing well-formed UDP or TCP packets, optionally
/// wrapped in an Ethernet frame.
///
/// Defaults: TTL 64, identification 0, TCP flags ACK, window 65535, MACs
/// `02:00:00:00:00:01 → 02:00:00:00:00:02`, zero-filled payload.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    proto: IpProtocol,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    identification: u16,
    payload: Vec<u8>,
    tcp_flags: TcpFlags,
}

impl PacketBuilder {
    /// Start building a UDP packet.
    pub fn udp() -> Self {
        Self::new(IpProtocol::Udp)
    }

    /// Start building a TCP packet.
    pub fn tcp() -> Self {
        Self::new(IpProtocol::Tcp)
    }

    fn new(proto: IpProtocol) -> Self {
        PacketBuilder {
            proto,
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            ttl: 64,
            identification: 0,
            payload: Vec::new(),
            tcp_flags: TcpFlags(TcpFlags::ACK),
        }
    }

    /// Source address and port.
    pub fn src(mut self, addr: Ipv4Addr, port: u16) -> Self {
        self.src = addr;
        self.src_port = port;
        self
    }

    /// Destination address and port.
    pub fn dst(mut self, addr: Ipv4Addr, port: u16) -> Self {
        self.dst = addr;
        self.dst_port = port;
        self
    }

    /// Time-to-live.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// IPv4 identification field.
    pub fn identification(mut self, id: u16) -> Self {
        self.identification = id;
        self
    }

    /// Explicit payload bytes.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Zero-filled payload of the given length (trace synthesis only needs
    /// sizes, not content).
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload = vec![0u8; len];
        self
    }

    /// TCP flag bits (ignored for UDP).
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Serialise as an IPv4 packet (raw-IP link type).
    pub fn build_ipv4(&self) -> Vec<u8> {
        let transport = match self.proto {
            IpProtocol::Udp => udp::build_datagram(
                self.src,
                self.dst,
                self.src_port,
                self.dst_port,
                &self.payload,
            ),
            IpProtocol::Tcp => tcp::build_segment(
                self.src,
                self.dst,
                self.src_port,
                self.dst_port,
                0,
                0,
                self.tcp_flags,
                65535,
                &self.payload,
            ),
            other => panic!("PacketBuilder only builds TCP/UDP, got {other:?}"),
        };
        ipv4::build_packet(
            self.src,
            self.dst,
            self.proto,
            self.ttl,
            self.identification,
            &transport,
        )
    }

    /// Serialise as an Ethernet II frame around the IPv4 packet.
    pub fn build_ethernet(&self) -> Vec<u8> {
        let ip = self.build_ipv4();
        ethernet::build_frame(
            MacAddr([0x02, 0, 0, 0, 0, 0x02]),
            MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            EtherType::Ipv4,
            &ip,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 200);

    #[test]
    fn udp_meta_via_ethernet() {
        let bytes = PacketBuilder::udp()
            .src(SRC, 4000)
            .dst(DST, 53)
            .payload_len(100)
            .build_ethernet();
        let meta = parse_meta(LinkType::Ethernet, &bytes, 42).unwrap();
        assert_eq!(meta.ts_ns, 42);
        assert_eq!(meta.src, SRC);
        assert_eq!(meta.dst, DST);
        assert_eq!(meta.proto, IpProtocol::Udp);
        assert_eq!(meta.src_port, 4000);
        assert_eq!(meta.dst_port, 53);
        assert_eq!(meta.wire_len as usize, bytes.len());
    }

    #[test]
    fn tcp_meta_via_raw_ip() {
        let bytes = PacketBuilder::tcp()
            .src(SRC, 443)
            .dst(DST, 51234)
            .tcp_flags(TcpFlags(TcpFlags::SYN))
            .build_ipv4();
        let meta = parse_meta(LinkType::RawIp, &bytes, 0).unwrap();
        assert_eq!(meta.proto, IpProtocol::Tcp);
        assert_eq!(meta.src_port, 443);
        assert_eq!(meta.dst_port, 51234);
        assert_eq!(meta.wire_len as usize, bytes.len());
    }

    #[test]
    fn non_ipv4_ethertype_rejected() {
        let frame = ethernet::build_frame(
            MacAddr::default(),
            MacAddr::default(),
            EtherType::Arp,
            &[0u8; 28],
        );
        assert_eq!(
            parse_meta(LinkType::Ethernet, &frame, 0).unwrap_err(),
            PacketError::UnsupportedEtherType(0x0806)
        );
    }

    #[test]
    fn snapped_record_uses_orig_len() {
        use crate::pcap::{PcapReader, PcapWriter};
        let packet = PacketBuilder::udp()
            .src(SRC, 1)
            .dst(DST, 2)
            .payload_len(400)
            .build_ipv4();

        let mut buf = Vec::new();
        // Snap at 64 bytes: headers survive, payload does not.
        let mut w = PcapWriter::with_options(
            &mut buf,
            LinkType::RawIp.code(),
            crate::pcap::TsResolution::Micro,
            64,
        )
        .unwrap();
        w.write_record(5_000_000_000, packet.len() as u32, &packet).unwrap();
        w.finish().unwrap();

        let mut r = PcapReader::new(&buf[..]).unwrap();
        let link = LinkType::from_code(r.header().linktype).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        // The IPv4 total-length check fails on the snapped buffer — parse
        // must report truncation, not panic...
        let err = parse_record_meta(link, &rec).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { .. }));

        // ...and an unsnapped record reports the true wire length.
        let mut buf2 = Vec::new();
        let mut w2 = PcapWriter::new(&mut buf2, LinkType::RawIp.code()).unwrap();
        w2.write_record(5_000_000_000, packet.len() as u32, &packet).unwrap();
        w2.finish().unwrap();
        let mut r2 = PcapReader::new(&buf2[..]).unwrap();
        let rec2 = r2.next_record().unwrap().unwrap();
        let meta = parse_record_meta(LinkType::RawIp, &rec2).unwrap();
        assert_eq!(meta.wire_len as usize, packet.len());
    }

    #[test]
    fn icmp_like_packets_have_zero_ports() {
        let ip = ipv4::build_packet(SRC, DST, IpProtocol::Icmp, 64, 0, &[8, 0, 0, 0]);
        let meta = parse_meta(LinkType::RawIp, &ip, 0).unwrap();
        assert_eq!(meta.proto, IpProtocol::Icmp);
        assert_eq!(meta.src_port, 0);
        assert_eq!(meta.dst_port, 0);
    }

    #[test]
    fn linktype_codes() {
        assert_eq!(LinkType::Ethernet.code(), 1);
        assert_eq!(LinkType::RawIp.code(), 101);
        assert_eq!(LinkType::from_code(1).unwrap(), LinkType::Ethernet);
        assert_eq!(LinkType::from_code(228).unwrap(), LinkType::RawIp);
        assert!(matches!(
            LinkType::from_code(105).unwrap_err(),
            PacketError::UnsupportedLinkType(105)
        ));
    }
}
