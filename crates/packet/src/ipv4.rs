//! IPv4 headers.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::check_len;
use crate::{PacketError, Result};

/// Minimum IPv4 header length (IHL = 5, no options).
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers the pipeline understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Anything else, kept verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(raw: u8) -> Self {
        match raw {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(raw) => raw,
        }
    }
}

/// Zero-copy view of an IPv4 packet.
///
/// [`Ipv4Packet::parse`] validates version, IHL and total length against
/// the buffer; checksum verification is separate
/// ([`Ipv4Packet::verify_checksum`]) so that a measurement pipeline can
/// count bad-checksum packets instead of dropping them silently.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Wrap and structurally validate a buffer.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        check_len(buf, IPV4_MIN_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion(version));
        }
        let ihl = buf[0] & 0x0f;
        if ihl < 5 {
            return Err(PacketError::BadHeaderLen(ihl));
        }
        let header_len = usize::from(ihl) * 4;
        check_len(buf, header_len)?;
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < header_len {
            return Err(PacketError::BadHeaderLen(ihl));
        }
        check_len(buf, total_len)?;
        Ok(Ipv4Packet { buf })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[0] & 0x0f) * 4
    }

    /// The total-length field: header plus payload.
    pub fn total_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.buf[2], self.buf[3]]))
    }

    /// Type-of-service byte.
    pub fn tos(&self) -> u8 {
        self.buf[1]
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_fragment(&self) -> bool {
        self.buf[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_fragments(&self) -> bool {
        self.buf[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        u16::from_be_bytes([self.buf[6] & 0x1f, self.buf[7]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// The protocol field.
    pub fn protocol(&self) -> IpProtocol {
        self.buf[9].into()
    }

    /// The checksum field as stored.
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// Whether the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buf[..self.header_len()])
    }

    /// The payload as bounded by the total-length field.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len()..self.total_len()]
    }
}

/// Serialise an IPv4 packet (no options) around `payload`.
///
/// The checksum is computed and stored; `identification`, `ttl` and `tos`
/// take protocol-typical defaults unless specified via the full builder in
/// [`crate::PacketBuilder`].
pub fn build_packet(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: IpProtocol,
    ttl: u8,
    identification: u16,
    payload: &[u8],
) -> Vec<u8> {
    let total_len = IPV4_MIN_HEADER_LEN + payload.len();
    assert!(total_len <= usize::from(u16::MAX), "payload too large for IPv4");
    let mut out = Vec::with_capacity(total_len);
    out.push(0x45); // version 4, IHL 5
    out.push(0); // TOS
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&identification.to_be_bytes());
    out.extend_from_slice(&[0x40, 0x00]); // DF set, offset 0
    out.push(ttl);
    out.push(protocol.into());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
    let sum = checksum::checksum(&out);
    out[10..12].copy_from_slice(&sum.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        build_packet(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 0, 2, 7),
            IpProtocol::Udp,
            64,
            0x1234,
            b"payload bytes",
        )
    }

    #[test]
    fn round_trip_fields() {
        let bytes = sample();
        let p = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(p.src(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.dst(), Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(p.protocol(), IpProtocol::Udp);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.identification(), 0x1234);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 20 + 13);
        assert_eq!(p.payload(), b"payload bytes");
        assert!(p.dont_fragment());
        assert!(!p.more_fragments());
        assert_eq!(p.fragment_offset(), 0);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupted_byte_fails_checksum_but_parses() {
        let mut bytes = sample();
        bytes[8] ^= 0xff; // flip the TTL
        let p = Ipv4Packet::parse(&bytes).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample();
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(&bytes).unwrap_err(), PacketError::BadVersion(6));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut bytes = sample();
        bytes[0] = 0x42; // IHL 2 < 5
        assert_eq!(Ipv4Packet::parse(&bytes).unwrap_err(), PacketError::BadHeaderLen(2));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut bytes = sample();
        bytes[2] = 0xff;
        bytes[3] = 0xff;
        assert!(matches!(
            Ipv4Packet::parse(&bytes).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_total_len_below_header_len() {
        let mut bytes = sample();
        bytes[2] = 0x00;
        bytes[3] = 0x10; // 16 < 20
        assert!(matches!(
            Ipv4Packet::parse(&bytes).unwrap_err(),
            PacketError::BadHeaderLen(_)
        ));
    }

    #[test]
    fn rejects_truncated_buffer() {
        assert!(matches!(
            Ipv4Packet::parse(&[0x45; 10]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn payload_respects_total_len_with_trailing_junk() {
        // Ethernet padding after the IP datagram must not leak into payload.
        let mut bytes = sample();
        bytes.extend_from_slice(&[0xAA; 6]);
        let p = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(p.payload(), b"payload bytes");
    }

    #[test]
    fn protocol_mapping() {
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Other(89));
        assert_eq!(u8::from(IpProtocol::Tcp), 6);
        assert_eq!(u8::from(IpProtocol::Other(89)), 89);
    }
}
