//! Asynchronous zero-copy capture ingest: a framer thread scans record
//! spans ahead of the consumer, parser threads decode them into
//! [`PacketMeta`], and a bounded ring of pooled buffers recycles every
//! allocation.
//!
//! # Pipeline shape
//!
//! ```text
//!            spans (offsets, zero-copy)       parsed batches (seq-tagged)
//!  framer ───────────────────────▶ parsers ───────────────────────▶ reader
//!    ▲                               ×P                               │
//!    └────────── span-vec ring ◀──────────────── meta-vec ring ◀──────┘
//! ```
//!
//! * The **framer** thread walks the shared in-memory capture with
//!   [`PcapSlice::next_batch_spans`] — the two-cursor scan-ahead walk,
//!   promoted from an inline helper to a dedicated thread, so header
//!   cache misses overlap with parsing and consumption instead of
//!   serialising in front of them. It emits `(header, byte-range)`
//!   spans; **no record bytes are copied**.
//! * **Parser** threads pull span batches from a shared channel
//!   (first-free-takes-next) and resolve each span against their own
//!   `Arc` of the capture via [`parse_buf_meta`]. Packet-level failures
//!   are counted per batch, exactly like the serial reader.
//! * The **reader** (the consumer's thread, via
//!   [`PooledReader::next_metas`]) reassembles parsed batches in frame
//!   order by sequence number, so the delivered stream — packet order,
//!   chunk boundaries, malformed counts, error position — is
//!   **deterministic and independent of the worker count**. A streaming
//!   pipeline can therefore checkpoint at chunk boundaries and resume
//!   against a pooled source with any other worker count.
//!
//! # Bounded memory
//!
//! Both buffer kinds (span vectors, meta vectors) live in rings of at
//! most [`RING_DEPTH`] entries, recycled through return channels once
//! the reader consumes a batch. The framer allocates a fresh span
//! vector only while the ring is not yet full; after that it *blocks*
//! on the return channel — the one blocking edge in the graph, which
//! backpressures the scan to the consumer's pace and caps the whole
//! stage at `O(RING_DEPTH · FRAME_BATCH)` records in flight no matter
//! how large the capture is.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::pcap::{PcapSlice, RecordHeader};
use crate::{parse_buf_meta, LinkType, PacketMeta, Result};

/// Records per framed batch — one batch becomes one consumer chunk.
pub const FRAME_BATCH: usize = 256;

/// Maximum batches in flight (scanned but not yet consumed): the depth
/// of both buffer rings, and the backpressure bound on the framer.
pub const RING_DEPTH: usize = 8;

/// One record span: its decoded header plus the byte range of its
/// captured payload in the capture buffer.
type Span = (RecordHeader, Range<usize>);

/// What a parser hands back for one frame batch.
struct ParsedBatch {
    /// The span vector, returned for recycling.
    spans: Vec<Span>,
    /// Parsed packets, in record order.
    metas: Vec<PacketMeta>,
    /// Records in this batch that failed packet-level parsing.
    malformed: u64,
}

/// Messages from the framer to the parsers: a span batch, or the
/// structural error that ended the scan (forwarded so it surfaces to
/// the reader *in sequence*, after every batch before it).
type Framed = (u64, Result<Vec<Span>>);

/// Messages from the parsers to the reader.
type Parsed = (u64, Result<ParsedBatch>);

/// Multi-threaded pooled capture reader: see the module docs for the
/// architecture. Construct with [`PooledReader::new`], then drain with
/// [`PooledReader::next_metas`] — one framed batch per call, in capture
/// order.
pub struct PooledReader {
    link: LinkType,
    parsed_rx: Option<Receiver<Parsed>>,
    spans_pool_tx: Option<Sender<Vec<Span>>>,
    metas_pool_tx: Option<Sender<Vec<PacketMeta>>>,
    /// Batches received ahead of [`PooledReader::next_seq`].
    reorder: BTreeMap<u64, Result<ParsedBatch>>,
    next_seq: u64,
    malformed: u64,
    done: bool,
    handles: Vec<JoinHandle<()>>,
}

impl PooledReader {
    /// Validate the capture's global header and spawn the framer plus
    /// `workers` parser threads over a shared in-memory capture.
    /// `workers` is clamped to at least 1.
    pub fn new(data: Arc<Vec<u8>>, workers: usize) -> Result<Self> {
        // Header problems surface here, on the caller's thread, exactly
        // like the serial readers — the threads below only ever see a
        // structurally-opened capture.
        let slice = PcapSlice::new(&data)?;
        let link = LinkType::from_code(slice.header().linktype)?;
        let workers = workers.max(1);

        let (frame_tx, frame_rx) = channel::<Framed>();
        let (parsed_tx, parsed_rx) = channel::<Parsed>();
        let (spans_pool_tx, spans_pool_rx) = channel::<Vec<Span>>();
        let (metas_pool_tx, metas_pool_rx) = channel::<Vec<PacketMeta>>();
        let frame_rx = Arc::new(Mutex::new(frame_rx));
        let metas_pool_rx = Arc::new(Mutex::new(metas_pool_rx));

        let mut handles = Vec::with_capacity(workers + 1);
        let framer_data = data.clone();
        handles.push(
            std::thread::Builder::new()
                .name("eleph-framer".into())
                .spawn(move || run_framer(&framer_data, frame_tx, spans_pool_rx))
                .expect("spawn framer thread"),
        );
        for w in 0..workers {
            let data = data.clone();
            let frame_rx = frame_rx.clone();
            let metas_pool_rx = metas_pool_rx.clone();
            let parsed_tx = parsed_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("eleph-parser-{w}"))
                    .spawn(move || run_parser(&data, link, frame_rx, metas_pool_rx, parsed_tx))
                    .expect("spawn parser thread"),
            );
        }
        Ok(PooledReader {
            link,
            parsed_rx: Some(parsed_rx),
            spans_pool_tx: Some(spans_pool_tx),
            metas_pool_tx: Some(metas_pool_tx),
            reorder: BTreeMap::new(),
            next_seq: 0,
            malformed: 0,
            done: false,
            handles,
        })
    }

    /// The capture's link type.
    pub fn link(&self) -> LinkType {
        self.link
    }

    /// Records seen so far that framed correctly but failed
    /// packet-level parsing (counted in delivery order, so the total is
    /// consistent with the packets appended to `out` at every return).
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Append the next framed batch's packets to `out` in capture
    /// order; `Ok(0)` means the capture is exhausted. Batches whose
    /// records were all malformed are skipped internally (never a
    /// spurious mid-stream zero). A structural capture error aborts the
    /// stream at exactly the record where the serial reader would.
    pub fn next_metas(&mut self, out: &mut Vec<PacketMeta>) -> Result<usize> {
        let base = out.len();
        while out.len() == base {
            if self.done {
                return Ok(0);
            }
            let Some(result) = self.recv_next() else {
                self.done = true;
                return Ok(0);
            };
            self.next_seq += 1;
            let batch = match result {
                Ok(batch) => batch,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            self.malformed += batch.malformed;
            out.extend_from_slice(&batch.metas);
            self.recycle(batch);
        }
        Ok(out.len() - base)
    }

    /// Block until the batch with sequence [`PooledReader::next_seq`]
    /// is available; `None` when the stream ended before it (clean
    /// end-of-capture: the framer never produced that sequence).
    fn recv_next(&mut self) -> Option<Result<ParsedBatch>> {
        let rx = self.parsed_rx.as_ref().expect("reader channels live");
        loop {
            if let Some(result) = self.reorder.remove(&self.next_seq) {
                return Some(result);
            }
            match rx.recv() {
                Ok((seq, result)) => {
                    self.reorder.insert(seq, result);
                }
                Err(_) => return None,
            }
        }
    }

    /// Return a consumed batch's buffers to their rings. Send failures
    /// mean the workers already exited (end of capture) — the buffers
    /// are simply dropped.
    fn recycle(&mut self, batch: ParsedBatch) {
        let ParsedBatch {
            mut spans,
            mut metas,
            ..
        } = batch;
        spans.clear();
        metas.clear();
        if let Some(tx) = &self.spans_pool_tx {
            let _ = tx.send(spans);
        }
        if let Some(tx) = &self.metas_pool_tx {
            let _ = tx.send(metas);
        }
    }
}

impl Drop for PooledReader {
    fn drop(&mut self) {
        // Closing the channels unblocks every worker (the framer's pool
        // recv, the parsers' frame recv / parsed send); then join so no
        // thread outlives the reader.
        self.parsed_rx = None;
        self.spans_pool_tx = None;
        self.metas_pool_tx = None;
        self.reorder.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The framer thread: scan-ahead span batching over the shared capture.
fn run_framer(data: &[u8], frame_tx: Sender<Framed>, pool: Receiver<Vec<Span>>) {
    let mut slice = PcapSlice::new(data).expect("capture header validated at construction");
    let mut allocated = 0usize;
    let mut seq = 0u64;
    loop {
        // A recycled span vector if one is waiting; a fresh one while
        // the ring has room; otherwise block on the ring — this is the
        // backpressure edge bounding batches in flight.
        let mut spans = match pool.try_recv() {
            Ok(spans) => spans,
            Err(TryRecvError::Empty) if allocated < RING_DEPTH => {
                allocated += 1;
                Vec::with_capacity(FRAME_BATCH)
            }
            Err(TryRecvError::Empty) => match pool.recv() {
                Ok(spans) => spans,
                Err(_) => return, // reader gone
            },
            Err(TryRecvError::Disconnected) => return,
        };
        debug_assert!(spans.is_empty());
        match slice.next_batch_spans(FRAME_BATCH, &mut spans) {
            Ok(0) => return,
            Ok(n) => {
                if frame_tx.send((seq, Ok(spans))).is_err() {
                    return;
                }
                seq += 1;
                if n < FRAME_BATCH {
                    return; // clean end-of-capture
                }
            }
            Err(e) => {
                // The valid prefix of the damaged batch is discarded,
                // matching the serial reader: a chunk that hits a
                // structural error contributes no packets.
                let _ = frame_tx.send((seq, Err(e)));
                return;
            }
        }
    }
}

/// A parser thread: resolve span batches against the shared capture.
fn run_parser(
    data: &[u8],
    link: LinkType,
    frame_rx: Arc<Mutex<Receiver<Framed>>>,
    metas_pool_rx: Arc<Mutex<Receiver<Vec<PacketMeta>>>>,
    parsed_tx: Sender<Parsed>,
) {
    loop {
        // Hold the lock only for the recv: batches are claimed by
        // whichever parser is free, the same worker-pool idiom as the
        // batch aggregator's shard scan.
        let msg = frame_rx.lock().expect("frame channel lock").recv();
        let Ok((seq, framed)) = msg else { return };
        let result = match framed {
            Err(e) => Err(e),
            Ok(spans) => {
                // A recycled meta vector when one is waiting; fresh
                // otherwise. Never blocks — the parser holding the
                // next-in-sequence batch must always be able to finish.
                let metas = metas_pool_rx
                    .lock()
                    .expect("meta pool lock")
                    .try_recv()
                    .unwrap_or_else(|_| Vec::with_capacity(FRAME_BATCH));
                Ok(parse_spans(data, link, spans, metas))
            }
        };
        if parsed_tx.send((seq, result)).is_err() {
            return;
        }
    }
}

/// Decode one span batch (the cache-hot inner loop of a parser thread).
fn parse_spans(
    data: &[u8],
    link: LinkType,
    spans: Vec<Span>,
    mut metas: Vec<PacketMeta>,
) -> ParsedBatch {
    debug_assert!(metas.is_empty());
    let mut malformed = 0u64;
    for (head, range) in &spans {
        match parse_buf_meta(link, &data[range.clone()], head) {
            Ok(meta) => metas.push(meta),
            Err(_) => malformed += 1,
        }
    }
    ParsedBatch {
        spans,
        metas,
        malformed,
    }
}

/// Convenience check used by tests and callers sizing worker counts:
/// a pooled reader with this many workers saturates the stage without
/// oversubscribing the host.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(2)).unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::{PcapWriter, TsResolution};
    use crate::{PacketBuilder, PacketError};

    /// A capture with parseable records, interleaved malformed records,
    /// and varied sizes.
    fn capture(records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w =
            PcapWriter::with_options(&mut buf, 101, TsResolution::Nano, 65535).unwrap();
        for i in 0..records {
            let ts = i as u64 * 1_000_000;
            if i % 17 == 3 {
                // Structurally framed but unparseable as a packet.
                w.write_record(ts, 6, &[0xFF; 6]).unwrap();
            } else {
                let bytes = PacketBuilder::udp()
                    .src("10.0.0.1".parse().unwrap(), 5000)
                    .dst("192.0.2.7".parse().unwrap(), (i % 1000) as u16)
                    .payload_len(i % 200)
                    .build_ipv4();
                w.write_record(ts, bytes.len() as u32, &bytes).unwrap();
            }
        }
        w.finish().unwrap();
        buf
    }

    /// Serial reference: the stream the `PcapReader`-based path yields.
    fn serial_metas(buf: &[u8]) -> (Vec<PacketMeta>, u64) {
        let mut slice = PcapSlice::new(buf).unwrap();
        let link = LinkType::from_code(slice.header().linktype).unwrap();
        let mut metas = Vec::new();
        let mut malformed = 0;
        while let Some((head, data)) = slice.next_record().unwrap() {
            match parse_buf_meta(link, data, &head) {
                Ok(m) => metas.push(m),
                Err(_) => malformed += 1,
            }
        }
        (metas, malformed)
    }

    #[test]
    fn pooled_stream_matches_serial_for_any_worker_count() {
        let buf = capture(1500);
        let (want, want_malformed) = serial_metas(&buf);
        for workers in [1, 2, 4] {
            let mut reader = PooledReader::new(Arc::new(buf.clone()), workers).unwrap();
            let mut got = Vec::new();
            let mut chunks = Vec::new();
            loop {
                let before = got.len();
                let n = reader.next_metas(&mut got).unwrap();
                if n == 0 {
                    break;
                }
                assert_eq!(got.len() - before, n);
                chunks.push(n);
            }
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(reader.malformed(), want_malformed);
            // Deterministic chunking: every batch is FRAME_BATCH raw
            // records minus its malformed share, except the tail.
            assert!(chunks.len() >= 2, "workers={workers}");
        }
    }

    #[test]
    fn pooled_chunk_boundaries_are_deterministic() {
        let buf = Arc::new(capture(900));
        let chunk_sizes = |workers: usize| {
            let mut reader = PooledReader::new(buf.clone(), workers).unwrap();
            let mut out = Vec::new();
            let mut sizes = Vec::new();
            loop {
                out.clear();
                match reader.next_metas(&mut out).unwrap() {
                    0 => break,
                    n => sizes.push(n),
                }
            }
            sizes
        };
        let reference = chunk_sizes(1);
        for workers in [2, 3, 4] {
            assert_eq!(chunk_sizes(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn structural_error_surfaces_in_sequence() {
        let mut buf = capture(700);
        buf.truncate(buf.len() - 3); // cut the last record's body
        let mut want_err_after = 0usize;
        {
            // Count the records the serial scan yields before the error.
            let mut slice = PcapSlice::new(&buf).unwrap();
            let link = LinkType::from_code(slice.header().linktype).unwrap();
            loop {
                match slice.next_record() {
                    Ok(Some((head, data))) => {
                        if parse_buf_meta(link, data, &head).is_ok() {
                            want_err_after += 1;
                        }
                    }
                    _ => break,
                }
            }
        }
        for workers in [1, 3] {
            let mut reader = PooledReader::new(Arc::new(buf.clone()), workers).unwrap();
            let mut got = Vec::new();
            let err = loop {
                match reader.next_metas(&mut got) {
                    Ok(0) => panic!("stream must end in the structural error"),
                    Ok(_) => {}
                    Err(e) => break e,
                }
            };
            assert!(matches!(err, PacketError::Io(_)), "workers={workers}: {err}");
            // Every full batch before the damaged one was delivered;
            // the damaged batch contributed nothing (serial semantics).
            assert!(got.len() <= want_err_after, "workers={workers}");
            assert_eq!(got.len() % 1, 0);
            assert!(reader.next_metas(&mut got).unwrap() == 0, "terminal after error");
        }
    }

    #[test]
    fn empty_capture_ends_immediately() {
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf, 101).unwrap();
        w.finish().unwrap();
        let mut reader = PooledReader::new(Arc::new(buf), 2).unwrap();
        let mut out = Vec::new();
        assert_eq!(reader.next_metas(&mut out).unwrap(), 0);
        assert_eq!(reader.next_metas(&mut out).unwrap(), 0);
    }

    #[test]
    fn bad_header_rejected_on_callers_thread() {
        let Err(err) = PooledReader::new(Arc::new(vec![0u8; 24]), 2) else {
            panic!("bad magic must be rejected");
        };
        assert!(matches!(err, PacketError::BadMagic(0)));
    }

    #[test]
    fn dropping_mid_stream_joins_all_threads() {
        let buf = Arc::new(capture(5000));
        let mut reader = PooledReader::new(buf, 3).unwrap();
        let mut out = Vec::new();
        reader.next_metas(&mut out).unwrap();
        drop(reader); // must not hang on the in-flight batches
    }
}
