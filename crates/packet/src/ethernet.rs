//! Ethernet II frames.

use core::fmt;

use crate::error::check_len;
use crate::Result;

/// Length of an Ethernet II header: two MACs plus the ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the group bit (multicast) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// The ethertypes the pipeline understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806` (recognised so it can be counted, not parsed further).
    Arp,
    /// Anything else, kept verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(raw) => raw,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Wrap a buffer, checking only that the fixed header fits.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        check_len(buf, ETHERNET_HEADER_LEN)?;
        Ok(EthernetFrame { buf })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        MacAddr(self.buf[0..6].try_into().expect("checked in parse"))
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        MacAddr(self.buf[6..12].try_into().expect("checked in parse"))
    }

    /// The ethertype field.
    pub fn ethertype(&self) -> EtherType {
        u16::from_be_bytes([self.buf[12], self.buf[13]]).into()
    }

    /// The bytes after the header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[ETHERNET_HEADER_LEN..]
    }
}

/// Serialise an Ethernet II frame around `payload`.
pub fn build_frame(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + payload.len());
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    out.extend_from_slice(&u16::from(ethertype).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Convenience: does this buffer look like an IPv4-bearing frame?
pub fn is_ipv4_frame(buf: &[u8]) -> bool {
    EthernetFrame::parse(buf)
        .map(|f| f.ethertype() == EtherType::Ipv4)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketError;

    #[test]
    fn round_trip() {
        let dst = MacAddr([1, 2, 3, 4, 5, 6]);
        let src = MacAddr([7, 8, 9, 10, 11, 12]);
        let bytes = build_frame(dst, src, EtherType::Ipv4, b"hello");
        let frame = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(frame.dst(), dst);
        assert_eq!(frame.src(), src);
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), b"hello");
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            EthernetFrame::parse(&[0u8; 13]).unwrap_err(),
            PacketError::Truncated { needed: 14, got: 13 }
        );
    }

    #[test]
    fn empty_payload_ok() {
        let bytes = build_frame(MacAddr::BROADCAST, MacAddr::default(), EtherType::Arp, &[]);
        let frame = EthernetFrame::parse(&bytes).unwrap();
        assert!(frame.payload().is_empty());
        assert!(frame.dst().is_broadcast());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x02, 0x00, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(m.to_string(), "02:00:de:ad:be:ef");
        assert!(!m.is_multicast());
        assert!(MacAddr([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn ipv4_frame_sniffing() {
        let v4 = build_frame(MacAddr::default(), MacAddr::default(), EtherType::Ipv4, &[]);
        let arp = build_frame(MacAddr::default(), MacAddr::default(), EtherType::Arp, &[]);
        assert!(is_ipv4_frame(&v4));
        assert!(!is_ipv4_frame(&arp));
        assert!(!is_ipv4_frame(&[0u8; 3]));
    }
}
