//! TCP segment headers.

use core::fmt;
use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::error::check_len;
use crate::{PacketError, Result};

/// Minimum TCP header length (data offset = 5, no options).
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// The TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
    /// URG flag.
    pub const URG: u8 = 0x20;

    /// Whether `bit` is set.
    pub fn contains(&self, bit: u8) -> bool {
        self.0 & bit != 0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u8, char); 6] = [
            (TcpFlags::FIN, 'F'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::URG, 'U'),
        ];
        for (bit, ch) in NAMES {
            if self.contains(bit) {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpSegment<'a> {
    buf: &'a [u8],
}

impl<'a> TcpSegment<'a> {
    /// Wrap and structurally validate a buffer.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        check_len(buf, TCP_MIN_HEADER_LEN)?;
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < TCP_MIN_HEADER_LEN {
            return Err(PacketError::BadHeaderLen((buf[12] >> 4) as u8));
        }
        check_len(buf, data_offset)?;
        Ok(TcpSegment { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.buf[4..8].try_into().expect("checked in parse"))
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.buf[8..12].try_into().expect("checked in parse"))
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[12] >> 4) * 4
    }

    /// The flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buf[13] & 0x3f)
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.buf[14], self.buf[15]])
    }

    /// The checksum field as stored.
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[16], self.buf[17]])
    }

    /// The payload after header and options.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len()..]
    }

    /// Verify the checksum against the pseudo-header for `src`/`dst`.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, self.buf.len() as u16);
        c.add_bytes(self.buf);
        c.finish() == 0
    }
}

/// Serialise a TCP segment (no options) with a valid checksum.
#[allow(clippy::too_many_arguments)]
pub fn build_segment(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    payload: &[u8],
) -> Vec<u8> {
    let len = TCP_MIN_HEADER_LEN + payload.len();
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&ack.to_be_bytes());
    out.push(0x50); // data offset 5
    out.push(flags.0);
    out.extend_from_slice(&window.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&[0, 0]); // urgent pointer
    out.extend_from_slice(payload);

    let mut c = Checksum::new();
    c.add_pseudo_header(src, dst, 6, len as u16);
    c.add_bytes(&out);
    let sum = c.finish();
    out[16..18].copy_from_slice(&sum.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 7);

    fn sample() -> Vec<u8> {
        build_segment(
            SRC,
            DST,
            443,
            51000,
            0xdeadbeef,
            0x01020304,
            TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
            65535,
            b"tls bytes",
        )
    }

    #[test]
    fn round_trip_fields() {
        let bytes = sample();
        let seg = TcpSegment::parse(&bytes).unwrap();
        assert_eq!(seg.src_port(), 443);
        assert_eq!(seg.dst_port(), 51000);
        assert_eq!(seg.seq(), 0xdeadbeef);
        assert_eq!(seg.ack(), 0x01020304);
        assert_eq!(seg.header_len(), 20);
        assert!(seg.flags().contains(TcpFlags::ACK));
        assert!(seg.flags().contains(TcpFlags::PSH));
        assert!(!seg.flags().contains(TcpFlags::SYN));
        assert_eq!(seg.window(), 65535);
        assert_eq!(seg.payload(), b"tls bytes");
        assert!(seg.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_binds_addresses() {
        // Same bytes, different pseudo-header: checksum must fail. This is
        // what catches NAT-style rewrites without checksum fixup.
        let bytes = sample();
        let seg = TcpSegment::parse(&bytes).unwrap();
        assert!(!seg.verify_checksum(SRC, Ipv4Addr::new(192, 0, 2, 8)));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let seg = TcpSegment::parse(&bytes).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_short_buffer_and_bad_offset() {
        assert!(matches!(
            TcpSegment::parse(&[0; 10]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
        let mut bytes = sample();
        bytes[12] = 0x20; // data offset 2 words < 5
        assert!(matches!(
            TcpSegment::parse(&bytes).unwrap_err(),
            PacketError::BadHeaderLen(_)
        ));
        let mut bytes = sample();
        bytes[12] = 0xf0; // offset 15 words = 60 bytes > buffer for tiny payloads
        bytes.truncate(24);
        assert!(matches!(
            TcpSegment::parse(&bytes).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags(TcpFlags::SYN | TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags(TcpFlags::FIN).to_string(), "F");
        assert_eq!(TcpFlags::default().to_string(), "");
    }

    #[test]
    fn empty_payload_segment() {
        let bytes = build_segment(SRC, DST, 1, 2, 0, 0, TcpFlags(TcpFlags::SYN), 1024, &[]);
        let seg = TcpSegment::parse(&bytes).unwrap();
        assert!(seg.payload().is_empty());
        assert!(seg.verify_checksum(SRC, DST));
    }
}
