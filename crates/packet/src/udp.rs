//! UDP datagram headers.

use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::error::check_len;
use crate::{PacketError, Result};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Zero-copy view of a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpDatagram<'a> {
    buf: &'a [u8],
}

impl<'a> UdpDatagram<'a> {
    /// Wrap and structurally validate a buffer.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        check_len(buf, UDP_HEADER_LEN)?;
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < UDP_HEADER_LEN {
            return Err(PacketError::BadHeaderLen(len as u8));
        }
        check_len(buf, len)?;
        Ok(UdpDatagram { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The length field: header plus payload.
    pub fn len_field(&self) -> usize {
        usize::from(u16::from_be_bytes([self.buf[4], self.buf[5]]))
    }

    /// The checksum field as stored (0 means "not computed" in IPv4).
    pub fn stored_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// The payload as bounded by the length field.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[UDP_HEADER_LEN..self.len_field()]
    }

    /// Verify the checksum; a stored checksum of zero is accepted as
    /// "checksum disabled" per RFC 768.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.stored_checksum() == 0 {
            return true;
        }
        let len = self.len_field();
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 17, len as u16);
        c.add_bytes(&self.buf[..len]);
        c.finish() == 0
    }
}

/// Serialise a UDP datagram with a valid checksum.
pub fn build_datagram(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let len = UDP_HEADER_LEN + payload.len();
    assert!(len <= usize::from(u16::MAX), "payload too large for UDP");
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(payload);

    let mut c = Checksum::new();
    c.add_pseudo_header(src, dst, 17, len as u16);
    c.add_bytes(&out);
    let sum = match c.finish() {
        // A computed checksum of zero is transmitted as all-ones (RFC 768).
        0 => 0xffff,
        s => s,
    };
    out[6..8].copy_from_slice(&sum.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 7);

    #[test]
    fn round_trip() {
        let bytes = build_datagram(SRC, DST, 5353, 53, b"query");
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.len_field(), 13);
        assert_eq!(d.payload(), b"query");
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut bytes = build_datagram(SRC, DST, 1, 2, b"x");
        bytes[6] = 0;
        bytes[7] = 0;
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = build_datagram(SRC, DST, 1, 2, b"hello world");
        bytes[9] ^= 0x80;
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert!(!d.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut bytes = build_datagram(SRC, DST, 1, 2, b"abc");
        bytes[4] = 0;
        bytes[5] = 4; // < 8
        assert!(matches!(
            UdpDatagram::parse(&bytes).unwrap_err(),
            PacketError::BadHeaderLen(_)
        ));
        let mut bytes = build_datagram(SRC, DST, 1, 2, b"abc");
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            UdpDatagram::parse(&bytes).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_padding_excluded_from_payload() {
        let mut bytes = build_datagram(SRC, DST, 1, 2, b"abc");
        bytes.extend_from_slice(&[0u8; 5]);
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert_eq!(d.payload(), b"abc");
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn empty_payload() {
        let bytes = build_datagram(SRC, DST, 9, 9, &[]);
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert!(d.payload().is_empty());
        assert_eq!(d.len_field(), UDP_HEADER_LEN);
        assert!(d.verify_checksum(SRC, DST));
    }
}
