//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// Incremental ones-complement sum, finalised by [`Checksum::finish`].
///
/// The same accumulator serves the IPv4 header checksum and the TCP/UDP
/// checksums (which additionally mix in the pseudo-header via
/// [`Checksum::add_pseudo_header`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Fold `data` into the sum. Odd-length data is zero-padded on the
    /// right, per RFC 1071.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Fold a single big-endian 16-bit word into the sum.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Fold the TCP/UDP pseudo-header: source, destination, protocol and
    /// upper-layer length.
    pub fn add_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) {
        self.add_bytes(&src.octets());
        self.add_bytes(&dst.octets());
        self.add_u16(u16::from(proto));
        self.add_u16(len);
    }

    /// Final ones-complement fold and inversion.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a byte slice (the IPv4 header case).
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: the sum over
/// the whole buffer must finish to zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
    /// sum to ddf2 (before inversion).
    #[test]
    fn rfc1071_worked_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    /// Classic IPv4 header example (Wikipedia's checksum article): the
    /// checksum field of this header is 0xb861.
    #[test]
    fn ipv4_header_example() {
        let mut header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&header), 0xb861);
        header[10] = 0xb8;
        header[11] = 0x61;
        assert!(verify(&header));
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [ab] is summed as ab00.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn carry_folding() {
        // ffff + ffff requires a double fold.
        assert_eq!(checksum(&[0xff, 0xff, 0xff, 0xff]), !0xffff);
    }

    #[test]
    fn pseudo_header_changes_sum() {
        let mut a = Checksum::new();
        a.add_bytes(b"payload!");
        let plain = a.finish();

        let mut b = Checksum::new();
        b.add_pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        b.add_bytes(b"payload!");
        assert_ne!(plain, b.finish());
    }

    #[test]
    fn verify_detects_single_bit_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x14, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[4] ^= 0x01;
        assert!(!verify(&data));
    }
}
