//! Wire formats and capture-file I/O.
//!
//! The measurement substrate of the backbone-elephants reproduction. The
//! paper's input is a packet trace captured on an OC-12 backbone link; this
//! crate provides everything needed to produce and consume such traces:
//!
//! * zero-copy **views** over `&[u8]` for Ethernet II ([`EthernetFrame`]),
//!   IPv4 ([`Ipv4Packet`]), TCP ([`TcpSegment`]) and UDP ([`UdpDatagram`]),
//!   each with checksum generation and validation;
//! * **builders** that emit well-formed packets ([`PacketBuilder`]);
//! * a classic **libpcap** file [`pcap::PcapReader`] / [`pcap::PcapWriter`]
//!   supporting both byte orders and microsecond/nanosecond resolution;
//! * [`PacketMeta`] — the per-packet record (timestamp, addresses, ports,
//!   protocol, wire length) the flow-aggregation pipeline consumes, and
//!   [`parse_meta`] to extract it from raw capture bytes.
//!
//! Malformed input never panics: every accessor that could run off the end
//! of a buffer is fronted by a length check, and parsers return
//! [`PacketError`]s that the pipeline counts (the paper's methodology
//! requires accounting for every captured packet).
//!
//! # Example
//!
//! ```
//! use eleph_packet::{PacketBuilder, parse_meta, LinkType, IpProtocol};
//!
//! let bytes = PacketBuilder::udp()
//!     .src("10.0.0.1".parse().unwrap(), 5000)
//!     .dst("192.0.2.7".parse().unwrap(), 53)
//!     .payload_len(120)
//!     .build_ethernet();
//! let meta = parse_meta(LinkType::Ethernet, &bytes, 0).unwrap();
//! assert_eq!(meta.proto, IpProtocol::Udp);
//! assert_eq!(meta.dst_port, 53);
//! ```

// The only unsafe in the crate is the feature-gated prefetch intrinsic
// in `pcap.rs` (architecturally a no-op hint); everything else stays
// forbidden either way.
#![cfg_attr(not(feature = "prefetch"), forbid(unsafe_code))]
#![cfg_attr(feature = "prefetch", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod checksum;
mod error;
mod ethernet;
mod ipv4;
mod meta;
pub mod pcap;
pub mod pool;
mod tcp;
mod udp;

pub use error::PacketError;
pub use ethernet::{is_ipv4_frame, EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Packet, IPV4_MIN_HEADER_LEN};
pub use meta::{parse_buf_meta, parse_meta, parse_record_meta, LinkType, PacketBuilder, PacketMeta};
pub use tcp::{TcpFlags, TcpSegment, TCP_MIN_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

/// Result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, PacketError>;
