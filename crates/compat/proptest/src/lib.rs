//! Minimal stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the subset of the
//! proptest API this workspace's property tests use is implemented here:
//! the [`Strategy`] trait (`prop_map`, `prop_flat_map`, `boxed`), range
//! and collection strategies, [`any`], `Just`, `prop_oneof!`, sample
//! indices, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), and
//! there is **no shrinking** — a failing case panics with the regular
//! assertion message. That trades minimal-counterexample convenience for
//! zero dependencies; determinism means a failure always reproduces.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over a string — used to derive a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Build from weighted options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! requires at least one positive weight");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut ticket = rng.gen_range(0..total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if ticket < w {
                return s.generate(rng);
            }
            ticket -= w;
        }
        unreachable!("ticket < total by construction")
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool, f64, f32);

/// Strategy for [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u32>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Admissible size specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Map onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index { raw: rng.gen() }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted / unweighted choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Property assertion (no shrinking: behaves as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: behaves as `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (no shrinking: behaves as `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u8..=6), x in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = x;
        }

        #[test]
        fn oneof_and_collections(
            v in prop::collection::vec(prop_oneof![3 => Just(0u8), 1 => 1u8..=9], 0..32),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() < 32);
            prop_assert!(v.iter().all(|&x| x <= 9));
            if !v.is_empty() {
                let i = idx.index(v.len());
                prop_assert!(i < v.len());
            }
        }

        #[test]
        fn map_and_flat_map(
            p in (1usize..5).prop_flat_map(|n| prop::collection::vec(0f64..1.0, n).prop_map(move |v| (n, v))),
        ) {
            prop_assert_eq!(p.0, p.1.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honoured(_x in 0u32..10) {
            // Would run 64 times by default; with_cases(3) keeps it at 3.
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
    }
}
