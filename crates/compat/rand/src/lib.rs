//! Minimal stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the subset of the
//! `rand 0.8` API this workspace uses is implemented here:
//!
//! * [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (excellent
//!   statistical quality, sub-nanosecond step) seeded via SplitMix64;
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Determinism is the property the workspace actually relies on (same
//! seed ⇒ same trace); no compatibility with upstream `rand` stream
//! values is promised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full/standard range
    /// (`f64`/`f32` sample uniformly from `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their standard distribution by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a uniform `u64` onto `[0, span)` via the widening-multiply method.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // An all-zero state is a fixed point; re-derive.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(1u32..6);
            assert!((1..6).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[1..6].iter().all(|&s| s));
        assert!(!seen[0]);
        for _ in 0..100 {
            let v = rng.gen_range(3usize..=4);
            assert!((3..=4).contains(&v));
        }
        for _ in 0..100 {
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }

    #[test]
    fn generic_unsized_rng_usage() {
        fn takes_dynish<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
