//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the subset of the
//! criterion API this workspace's benches use is implemented here:
//! [`Criterion`], benchmark groups with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`]
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark the closure is warmed up for
//! ~`WARMUP_MS`, an iteration count per sample is calibrated so a sample
//! takes ~`TARGET_SAMPLE_MS`, then `sample_size` samples are collected
//! and the **median ns/iter** reported. Results print to stdout in a
//! criterion-like format; when the `CRITERION_JSON` environment variable
//! names a file, one JSON object per benchmark is appended to it
//! (`{"group":…,"bench":…,"median_ns":…,…}`) — `scripts/bench.sh` uses
//! this to build the `BENCH_<date>.json` trajectory files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_MS: u64 = 120;
const TARGET_SAMPLE_MS: u64 = 40;
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier with a parameter, e.g. `build/20000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate the per-sample iteration count.
        let warmup = Duration::from_millis(WARMUP_MS);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target = u128::from(TARGET_SAMPLE_MS) * 1_000_000;
        self.iters_per_sample = ((target / per_iter.max(1)).clamp(1, 1_000_000_000)) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Median nanoseconds per iteration over the collected samples.
    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let mid = ns.len() / 2;
        if ns.len() % 2 == 1 {
            ns[mid]
        } else {
            (ns[mid - 1] + ns[mid]) / 2.0
        }
    }
}

/// The top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (implicit group named after it).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = id.into_id();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark (criterion's knob; honoured here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measurement-time knob: accepted for API compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher {
            sample_size: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmark `f` with an input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher {
            sample_size: self.sample_size,
            ..Bencher::default()
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report(&self, bench: &str, b: &Bencher) {
        let median = b.median_ns_per_iter();
        let mut line = format!(
            "{:<44} median: {:>12} ns/iter ({} samples x {} iters)",
            format!("{}/{}", self.name, bench),
            format_ns(median),
            b.samples.len(),
            b.iters_per_sample,
        );
        let mut throughput_fields = String::new();
        if let Some(t) = self.throughput {
            let (amount, unit, json_key) = match t {
                Throughput::Bytes(n) => (n as f64, "MiB/s", "throughput_bytes"),
                Throughput::Elements(n) => (n as f64, "Melem/s", "throughput_elements"),
            };
            if median.is_finite() && median > 0.0 {
                let per_sec = amount / (median / 1e9);
                let scaled = match t {
                    Throughput::Bytes(_) => per_sec / (1024.0 * 1024.0),
                    Throughput::Elements(_) => per_sec / 1e6,
                };
                line.push_str(&format!("  [{scaled:.1} {unit}]"));
                throughput_fields =
                    format!(",\"{json_key}\":{amount},\"per_second\":{per_sec:.1}");
            }
        }
        println!("{line}");

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let record = format!(
                    "{{\"group\":{},\"bench\":{},\"median_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{}}}\n",
                    json_string(&self.name),
                    json_string(bench),
                    median,
                    b.samples.len(),
                    b.iters_per_sample,
                    throughput_fields,
                );
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = file.write_all(record.as_bytes());
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return "n/a".to_string();
    }
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; a name filter may
            // follow. Filtering is not implemented — all benches run.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
            assert!(b.median_ns_per_iter() > 0.0);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids() {
        assert_eq!(BenchmarkId::new("build", 20_000).into_id(), "build/20000");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
