//! Minimal stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the one type this
//! workspace uses — [`Bytes`], a cheaply cloneable immutable byte buffer —
//! is implemented here over `Arc<[u8]>`. Only the API surface the
//! workspace consumes is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == &other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn empty() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(&b[..], &[] as &[u8]);
    }
}
