//! Minimal stand-in for the `rustc-hash` crate.
//!
//! Provides [`FxHasher`] — the fast, non-cryptographic multiply-rotate
//! hash used throughout rustc — and the [`FxHashMap`] / [`FxHashSet`]
//! aliases. For the small integer and `Prefix` keys on this workspace's
//! hot paths it is several times faster than the std SipHash default,
//! at the cost of no HashDoS resistance (fine: keys are not
//! attacker-controlled here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-rotate hash: one rotate, one xor and one multiply
/// per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
            self.add_to_hash(u64::from(word));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&500], 1000);

        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
    }

    #[test]
    fn byte_stream_matches_itself_across_chunking() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(a.finish(), b.finish());
    }
}
