//! Interval sinks: where sealed classifications go.
//!
//! A [`crate::Pipeline`] fans every sealed interval out to all attached
//! sinks in attach order, synchronously — there is no queue to back up,
//! so a slow sink simply paces the run (backpressure-free in the sense
//! that no buffering layer can overflow between the pipeline and its
//! consumers).

use std::io::{self, Seek, Write};
use std::sync::{Arc, Mutex};

use eleph_core::IntervalOutcome;
use eleph_flow::KeyId;
use eleph_net::Prefix;

/// One sealed measurement interval, borrowed from the pipeline at
/// emission time.
#[derive(Debug, Clone, Copy)]
pub struct SealedInterval<'a> {
    /// The classification outcome (threshold, elephants, loads).
    pub outcome: &'a IntervalOutcome,
    /// Unix time at which this interval starts.
    pub interval_start_unix: u64,
    /// Interval length in seconds (the paper's T).
    pub interval_secs: u64,
    /// The pipeline's key table so far: `keys[id]` is the prefix behind
    /// [`KeyId`] `id`. Elephant ids index into this slice.
    pub keys: &'a [Prefix],
}

impl SealedInterval<'_> {
    /// The elephants as `(key id, prefix)` pairs, ascending by key id.
    pub fn elephants(&self) -> impl Iterator<Item = (KeyId, Prefix)> + '_ {
        self.outcome
            .elephants
            .iter()
            .map(|&key| (key, self.keys[key as usize]))
    }
}

/// A consumer of sealed intervals.
pub trait Sink {
    /// Called once per sealed interval, in interval order.
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()>;

    /// Called once when the pipeline finishes; flush buffers here.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Adapts a closure into a [`Sink`] — the zero-ceremony way to react to
/// intervals (early elephant alerts, live dashboards, counters).
pub struct CallbackSink<F: FnMut(&SealedInterval<'_>)> {
    callback: F,
}

impl<F: FnMut(&SealedInterval<'_>)> CallbackSink<F> {
    /// Wrap a closure.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(&SealedInterval<'_>)> Sink for CallbackSink<F> {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        (self.callback)(sealed);
        Ok(())
    }
}

/// Writes one JSON object per sealed interval (JSON Lines).
///
/// Fields: `interval`, `start_unix`, `interval_secs`, `threshold`
/// (`null` while the detector has not yet produced a finite smoothed
/// threshold), `elephants` (prefix strings, ascending by key id),
/// `elephant_load`, `total_load`, `fraction`.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Emit JSONL to `out`. Wrap in a `BufWriter` for file targets.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

/// JSON number formatting: finite floats print via Rust's shortest
/// round-trip `Display`; non-finite values (the pre-detection infinite
/// threshold) become `null`.
fn json_num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Render one interval as its JSONL line (newline-terminated). The one
/// formatter behind [`JsonlSink`] and [`RotatingJsonlSink`], so file
/// and stream output stay byte-identical and a resumed run's lines can
/// be diffed against an uninterrupted one.
fn write_jsonl_line<W: Write>(out: &mut W, sealed: &SealedInterval<'_>) -> io::Result<()> {
    let o = sealed.outcome;
    write!(
        out,
        "{{\"interval\":{},\"start_unix\":{},\"interval_secs\":{},\"threshold\":{},\"elephants\":[",
        o.interval,
        sealed.interval_start_unix,
        sealed.interval_secs,
        json_num(o.threshold),
    )?;
    for (i, (_, prefix)) in sealed.elephants().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write!(out, "\"{prefix}\"")?;
    }
    writeln!(
        out,
        "],\"elephant_load\":{},\"total_load\":{},\"fraction\":{}}}",
        json_num(o.elephant_load),
        json_num(o.total_load),
        json_num(o.fraction()),
    )
}

impl<W: Write> Sink for JsonlSink<W> {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        write_jsonl_line(&mut self.out, sealed)?;
        // Flush at every seal: a crash then loses at most a torn
        // trailing line (which resume truncates), never whole buffered
        // intervals — and a full disk fails *this* seal, not the end of
        // the run.
        self.out.flush()
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Durable JSONL file sink with size-based rotation and crash-safe
/// resume.
///
/// The current file is always at `path`; when a line would push it past
/// `rotate_bytes`, the file is renamed to `path.1`, `path.2`, …
/// (ascending, so segment order is chronological) and a fresh `path`
/// starts. Concatenating `path.1 .. path.N` then `path` yields exactly
/// the stream a plain [`JsonlSink`] would have written.
///
/// Every line is flushed as it is sealed; [`RotatingJsonlSink::resume`]
/// truncates the chain back to the checkpoint's interval count,
/// removing torn trailing lines and post-checkpoint duplicates, which
/// is what makes interval emission exactly-once across crashes.
pub struct RotatingJsonlSink {
    path: std::path::PathBuf,
    rotate_bytes: Option<u64>,
    file: std::fs::File,
    /// Bytes in the current (un-rotated) file.
    bytes: u64,
    /// Rotated segments so far (`path.1 ..= path.segments` exist).
    segments: usize,
    /// Line-formatting scratch.
    buf: Vec<u8>,
}

impl RotatingJsonlSink {
    /// Start a fresh output chain at `path`, deleting any rotated
    /// segments a previous run left behind. `rotate_bytes` of `None`
    /// never rotates.
    pub fn create(path: impl Into<std::path::PathBuf>, rotate_bytes: Option<u64>) -> io::Result<Self> {
        let path = path.into();
        let file = std::fs::File::create(&path)?;
        // Stale segments from an abandoned run would otherwise be
        // concatenated in front of this run's output.
        for n in 1.. {
            let seg = Self::segment_path(&path, n);
            if !seg.exists() {
                break;
            }
            std::fs::remove_file(seg)?;
        }
        Ok(RotatingJsonlSink {
            path,
            rotate_bytes,
            file,
            bytes: 0,
            segments: 0,
            buf: Vec::new(),
        })
    }

    /// Re-open an output chain after a crash, truncating it to exactly
    /// `expected_lines` complete lines — the count the checkpoint
    /// recorded as durably emitted. Handles a torn trailing line (flush
    /// raced the crash) and whole extra lines (crash between sink write
    /// and checkpoint write). Errors if the chain holds *fewer*
    /// complete lines than expected: that output cannot have come from
    /// the checkpointed run.
    pub fn resume(
        path: impl Into<std::path::PathBuf>,
        rotate_bytes: Option<u64>,
        expected_lines: u64,
    ) -> io::Result<Self> {
        let path = path.into();
        // The chain in chronological order: path.1 .. path.N, then path.
        let mut chain: Vec<std::path::PathBuf> = Vec::new();
        for n in 1.. {
            let seg = Self::segment_path(&path, n);
            if !seg.exists() {
                break;
            }
            chain.push(seg);
        }
        let n_segments = chain.len();
        chain.push(path.clone());
        let mut remaining = expected_lines;
        for (i, file_path) in chain.iter().enumerate() {
            let data = if file_path.exists() {
                std::fs::read(file_path)?
            } else {
                Vec::new()
            };
            let lines = data.iter().filter(|&&b| b == b'\n').count() as u64;
            if lines < remaining {
                remaining -= lines;
                continue;
            }
            // The cut lands in this file: truncate it after its
            // `remaining`-th newline, drop every later file, and make
            // it the current output.
            let keep = if remaining == 0 {
                0
            } else {
                let mut seen = 0u64;
                data.iter()
                    .position(|&b| {
                        if b == b'\n' {
                            seen += 1;
                        }
                        seen == remaining
                    })
                    .expect("counted enough newlines")
                    + 1
            };
            for later in &chain[i + 1..] {
                if later.exists() {
                    std::fs::remove_file(later)?;
                }
            }
            if *file_path != path {
                // A rotated segment becomes the current file again.
                std::fs::rename(file_path, &path)?;
            }
            // `create(true)`: a crash between the rotation rename and
            // the new file's creation leaves no current file at all.
            let mut file = std::fs::OpenOptions::new().write(true).create(true).open(&path)?;
            file.set_len(keep as u64)?;
            file.seek(std::io::SeekFrom::End(0))?;
            return Ok(RotatingJsonlSink {
                path,
                rotate_bytes,
                file,
                bytes: keep as u64,
                segments: if i == n_segments { n_segments } else { i },
                buf: Vec::new(),
            });
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "output chain at {} holds fewer complete lines than the checkpoint's {expected_lines} \
                 — it cannot be the checkpointed run's output",
                path.display()
            ),
        ))
    }

    fn segment_path(path: &std::path::Path, n: usize) -> std::path::PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        std::path::PathBuf::from(name)
    }

    /// Number of rotated segments (`path.1 ..= path.<n>`).
    pub fn segments(&self) -> usize {
        self.segments
    }
}

impl Sink for RotatingJsonlSink {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        self.buf.clear();
        write_jsonl_line(&mut self.buf, sealed)?;
        if let Some(limit) = self.rotate_bytes {
            if self.bytes > 0 && self.bytes + self.buf.len() as u64 > limit {
                self.file.flush()?;
                self.segments += 1;
                std::fs::rename(&self.path, Self::segment_path(&self.path, self.segments))?;
                self.file = std::fs::File::create(&self.path)?;
                self.bytes = 0;
            }
        }
        self.file.write_all(&self.buf)?;
        self.file.flush()?;
        self.bytes += self.buf.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// One interval collected by a [`Collector`].
#[derive(Debug, Clone)]
pub struct CollectedInterval {
    /// Unix time at which the interval starts.
    pub interval_start_unix: u64,
    /// The classification outcome.
    pub outcome: IntervalOutcome,
}

/// Shared handle to in-memory collected intervals. Create one with
/// [`Collector::new`], attach [`Collector::sink`] to the pipeline, and
/// read the results back after [`crate::Pipeline::finish`].
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Arc<Mutex<Vec<CollectedInterval>>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that appends every sealed interval to this collector.
    pub fn sink(&self) -> CollectorSink {
        CollectorSink {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Take the collected intervals, leaving the collector empty.
    pub fn take(&self) -> Vec<CollectedInterval> {
        std::mem::take(&mut *self.inner.lock().expect("collector lock"))
    }

    /// Number of intervals collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("collector lock").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The [`Sink`] half of a [`Collector`].
#[derive(Debug)]
pub struct CollectorSink {
    inner: Arc<Mutex<Vec<CollectedInterval>>>,
}

impl Sink for CollectorSink {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        self.inner
            .lock()
            .expect("collector lock")
            .push(CollectedInterval {
                interval_start_unix: sealed.interval_start_unix,
                outcome: sealed.outcome.clone(),
            });
        Ok(())
    }
}
