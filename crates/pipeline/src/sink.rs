//! Interval sinks: where sealed classifications go.
//!
//! A [`crate::Pipeline`] fans every sealed interval out to all attached
//! sinks in attach order, synchronously — there is no queue to back up,
//! so a slow sink simply paces the run (backpressure-free in the sense
//! that no buffering layer can overflow between the pipeline and its
//! consumers).

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use eleph_core::IntervalOutcome;
use eleph_flow::KeyId;
use eleph_net::Prefix;

/// One sealed measurement interval, borrowed from the pipeline at
/// emission time.
#[derive(Debug, Clone, Copy)]
pub struct SealedInterval<'a> {
    /// The classification outcome (threshold, elephants, loads).
    pub outcome: &'a IntervalOutcome,
    /// Unix time at which this interval starts.
    pub interval_start_unix: u64,
    /// Interval length in seconds (the paper's T).
    pub interval_secs: u64,
    /// The pipeline's key table so far: `keys[id]` is the prefix behind
    /// [`KeyId`] `id`. Elephant ids index into this slice.
    pub keys: &'a [Prefix],
}

impl SealedInterval<'_> {
    /// The elephants as `(key id, prefix)` pairs, ascending by key id.
    pub fn elephants(&self) -> impl Iterator<Item = (KeyId, Prefix)> + '_ {
        self.outcome
            .elephants
            .iter()
            .map(|&key| (key, self.keys[key as usize]))
    }
}

/// A consumer of sealed intervals.
pub trait Sink {
    /// Called once per sealed interval, in interval order.
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()>;

    /// Called once when the pipeline finishes; flush buffers here.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Adapts a closure into a [`Sink`] — the zero-ceremony way to react to
/// intervals (early elephant alerts, live dashboards, counters).
pub struct CallbackSink<F: FnMut(&SealedInterval<'_>)> {
    callback: F,
}

impl<F: FnMut(&SealedInterval<'_>)> CallbackSink<F> {
    /// Wrap a closure.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(&SealedInterval<'_>)> Sink for CallbackSink<F> {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        (self.callback)(sealed);
        Ok(())
    }
}

/// Writes one JSON object per sealed interval (JSON Lines).
///
/// Fields: `interval`, `start_unix`, `interval_secs`, `threshold`
/// (`null` while the detector has not yet produced a finite smoothed
/// threshold), `elephants` (prefix strings, ascending by key id),
/// `elephant_load`, `total_load`, `fraction`.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Emit JSONL to `out`. Wrap in a `BufWriter` for file targets.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

/// JSON number formatting: finite floats print via Rust's shortest
/// round-trip `Display`; non-finite values (the pre-detection infinite
/// threshold) become `null`.
fn json_num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        let o = sealed.outcome;
        write!(
            self.out,
            "{{\"interval\":{},\"start_unix\":{},\"interval_secs\":{},\"threshold\":{},\"elephants\":[",
            o.interval,
            sealed.interval_start_unix,
            sealed.interval_secs,
            json_num(o.threshold),
        )?;
        for (i, (_, prefix)) in sealed.elephants().enumerate() {
            if i > 0 {
                self.out.write_all(b",")?;
            }
            write!(self.out, "\"{prefix}\"")?;
        }
        writeln!(
            self.out,
            "],\"elephant_load\":{},\"total_load\":{},\"fraction\":{}}}",
            json_num(o.elephant_load),
            json_num(o.total_load),
            json_num(o.fraction()),
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// One interval collected by a [`Collector`].
#[derive(Debug, Clone)]
pub struct CollectedInterval {
    /// Unix time at which the interval starts.
    pub interval_start_unix: u64,
    /// The classification outcome.
    pub outcome: IntervalOutcome,
}

/// Shared handle to in-memory collected intervals. Create one with
/// [`Collector::new`], attach [`Collector::sink`] to the pipeline, and
/// read the results back after [`crate::Pipeline::finish`].
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Arc<Mutex<Vec<CollectedInterval>>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that appends every sealed interval to this collector.
    pub fn sink(&self) -> CollectorSink {
        CollectorSink {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Take the collected intervals, leaving the collector empty.
    pub fn take(&self) -> Vec<CollectedInterval> {
        std::mem::take(&mut *self.inner.lock().expect("collector lock"))
    }

    /// Number of intervals collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("collector lock").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The [`Sink`] half of a [`Collector`].
#[derive(Debug)]
pub struct CollectorSink {
    inner: Arc<Mutex<Vec<CollectedInterval>>>,
}

impl Sink for CollectorSink {
    fn on_interval(&mut self, sealed: &SealedInterval<'_>) -> io::Result<()> {
        self.inner
            .lock()
            .expect("collector lock")
            .push(CollectedInterval {
                interval_start_unix: sealed.interval_start_unix,
                outcome: sealed.outcome.clone(),
            });
        Ok(())
    }
}
