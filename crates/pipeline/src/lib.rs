//! The streaming end-to-end pipeline: packets in, per-interval elephant
//! classifications out — without ever materializing the full bandwidth
//! matrix.
//!
//! The batch path (`eleph_flow::aggregate_pcap` → `BandwidthMatrix` →
//! `eleph_core::classify`) answers the paper's offline questions, but an
//! ISP consumes the elephant definition *operationally*: a monitor sits
//! on a live link, seals one measurement interval at a time, and must
//! emit the interval's elephant set before the next interval lands.
//! [`Pipeline`] is that form, assembled by [`PipelineBuilder`]:
//!
//! * a [`PacketSource`] yields time-ordered packet chunks — a pcap
//!   stream ([`PcapSource`]), a synthetic workload ([`TraceSource`]), or
//!   raw in-memory metadata ([`MetaSource`]);
//! * attribution reuses the frozen flat-array LPM and its *batched*
//!   lookup (`FrozenBgpTable::attribute_ids`, 64-packet chunks), the
//!   same hot path as the batch aggregator;
//! * one dense byte row accumulates the **open interval only**; when a
//!   packet's timestamp crosses the interval boundary the row is sealed
//!   into a sparse snapshot and fed to
//!   [`eleph_core::OnlineClassifier`];
//! * every sealed [`IntervalOutcome`](eleph_core::IntervalOutcome) fans
//!   out to the attached [`Sink`]s — a callback ([`CallbackSink`]), a
//!   JSONL writer ([`JsonlSink`]), an in-memory [`Collector`], or any
//!   custom implementation.
//!
//! Peak memory is bounded by the classifier window plus O(distinct
//! keys) of dense per-key state — independent of trace length, so
//! unbounded captures stream in constant space. Output is
//! **bit-identical** to the batch path on the same bytes (same
//! thresholds, elephants and loads per interval; pinned by
//! `tests/tests/streaming_equivalence.rs`).
//!
//! # Example: pcap to JSONL
//!
//! ```no_run
//! use eleph_core::{ConstantLoadDetector, Scheme};
//! use eleph_pipeline::{JsonlSink, PcapSource, PipelineBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let table: eleph_bgp::BgpTable = /* load or synthesize a RIB */
//! #     eleph_bgp::synth::generate(&eleph_bgp::synth::SynthConfig::default());
//! let file = std::fs::File::open("capture.pcap")?;
//!
//! let mut pipeline = PipelineBuilder::new()
//!     .table(&table)
//!     .interval_secs(300)
//!     .start_unix(995_990_400)
//!     .detector(ConstantLoadDetector::new(0.8))
//!     .gamma(0.9)
//!     .scheme(Scheme::LatentHeat { window: 12 })
//!     .sink(JsonlSink::new(std::io::stdout()))
//!     .build();
//!
//! pipeline.run(PcapSource::new(file)?)?; // one JSON line per interval
//! let report = pipeline.finish()?;
//! eprintln!(
//!     "{} intervals, {} prefixes, {} packets attributed",
//!     report.intervals, report.keys.len(), report.stats.attributed
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod pipeline;
mod shard;
mod sink;
mod source;

pub use checkpoint::{
    crc32, skip_offered, Checkpoint, CheckpointError, Checkpointer, CHECKPOINT_FILE,
};
pub use pipeline::{
    Pipeline, PipelineBuilder, PipelineError, PipelineReport, PipelineStats, Result,
};
// The state-backend configuration travels with the builder everywhere
// the pipeline does; re-exported so callers need not depend on
// eleph-core directly to select a sketch tier.
pub use eleph_core::StateBackendConfig;
pub use sink::{
    CallbackSink, CollectedInterval, Collector, CollectorSink, JsonlSink, RotatingJsonlSink,
    SealedInterval, Sink,
};
pub use source::{
    FaultedPcapSource, MetaSource, PacketSource, PcapSource, PooledPcapSource, TraceSource,
};
