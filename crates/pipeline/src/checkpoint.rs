//! Crash-safe snapshots of the streaming pipeline.
//!
//! A long-horizon monitor cannot afford to lose its classifier window:
//! latent heat and hysteresis are *temporal* stabilizers, so a restart
//! that resets them silently reclassifies every flow. A [`Checkpoint`]
//! carries the full recovery frontier — classifier window ring and
//! sliding sums, EWMA smoothing state, the first-seen key mapping, the
//! open interval's byte row, and the packet accounting — so a resumed
//! pipeline continues **bit-identically** to the run that wrote it.
//!
//! # Format (versions 2 and 3)
//!
//! ```text
//! magic    8 B  b"ELPHCKPT"
//! version  4 B  u32 LE
//! length   8 B  u64 LE payload byte count
//! crc32    4 B  CRC-32 (IEEE) over the payload
//! payload  ...  little-endian fields, see `Checkpoint::encode`
//! ```
//!
//! The payload opens with a configuration fingerprint (interval length,
//! window start, γ bits, scheme, detector name, route-id space size,
//! routing-table generation, per-key prefixes);
//! [`crate::PipelineBuilder::resume`] refuses a snapshot whose
//! fingerprint disagrees with the builder, so state can never be
//! grafted onto a different measurement definition — including a live
//! routing table at a different update generation than the one the
//! snapshot was taken against (version 2 added the generation field).
//!
//! Version 3 extends version 2 for pipelines running a sketch state
//! backend ([`eleph_core::sketch`]): the version-2 payload (whose dense
//! row is then empty — a sketch has no exact row) is followed by the
//! backend kind string and its length-prefixed, internally-versioned
//! sketch payload. Exact-backend checkpoints keep writing version 2
//! byte-for-byte, so `--state exact` images remain identical to every
//! earlier release; a reader accepts both versions and a resume
//! cross-checks the recorded backend kind against the builder's.
//!
//! # Atomicity & exactly-once emission
//!
//! [`Checkpointer`] writes to `<file>.tmp`, fsyncs, then renames over
//! the final name (plus a best-effort directory fsync) — a crash mid
//! write leaves a torn temp file and the previous complete checkpoint.
//! The snapshot records the number of intervals sealed *and already
//! delivered to the sinks*; on resume the durable JSONL output is
//! truncated back to exactly that many complete lines (torn trailing
//! lines and post-checkpoint duplicates removed) before the replay
//! continues, so every interval is emitted exactly once across any
//! number of crashes.
//!
//! Checkpoints are only taken at source chunk boundaries, which is what
//! makes replay exact: the checkpoint's `offered` count is reproduced
//! by [`skip_offered`] pulling whole chunks from a fresh source — the
//! chunking is deterministic, so the count lands on the same boundary.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use eleph_bgp::RouteId;
use eleph_core::{ClassifierState, Scheme, ThresholdDetector};
use eleph_flow::KeyId;
use eleph_net::Prefix;
use eleph_trace::CrashPoint;

use crate::pipeline::{Pipeline, PipelineError, PipelineStats};
use crate::source::PacketSource;

const MAGIC: [u8; 8] = *b"ELPHCKPT";
const VERSION: u32 = 2;
/// Format written when the pipeline runs a sketch state backend: the
/// version-2 payload plus the backend kind and its sketch payload.
const VERSION_SKETCH: u32 = 3;

/// Why a checkpoint could not be read, written, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The bytes are not a checkpoint (bad magic, unknown version,
    /// truncation, trailing garbage, or a malformed payload).
    Format(String),
    /// The payload bytes do not match their recorded checksum.
    Checksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// The snapshot's configuration fingerprint disagrees with the
    /// resuming pipeline's configuration.
    Mismatch(String),
    /// The decoded state failed structural validation (the classifier
    /// or key-allocator invariants).
    State(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(s) => write!(f, "not a valid checkpoint: {s}"),
            CheckpointError::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
            CheckpointError::Mismatch(s) => write!(f, "checkpoint configuration mismatch: {s}"),
            CheckpointError::State(s) => write!(f, "checkpoint state invalid: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        // Running out of file mid-decode is a torn checkpoint, not an
        // environment error: classify it as Format so callers treating
        // `Io` as retryable do not loop on a corrupt file.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Format("truncated".to_string())
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the pcap/zip polynomial, table
/// built at compile time so the checksum needs no dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// The configuration fingerprint embedded in every checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointConfig {
    pub(crate) interval_secs: u64,
    pub(crate) start_unix: u64,
    pub(crate) n_intervals: Option<u64>,
    pub(crate) gamma: f64,
    pub(crate) scheme: Scheme,
    pub(crate) detector: String,
    pub(crate) n_routes: u64,
    /// Routing-table generation (0 for frozen tables; the number of
    /// update batches applied for live tables). A resume must replay
    /// the table to exactly this generation first.
    pub(crate) generation: u64,
}

/// A decoded pipeline snapshot — everything a fresh process needs to
/// continue the run bit-identically (see the module docs).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub(crate) config: CheckpointConfig,
    /// Intervals sealed and delivered to every sink.
    pub(crate) open: u64,
    pub(crate) far_future_streak: u32,
    pub(crate) stats: PipelineStats,
    /// `(first-seen route, its prefix)` per key, ascending by key id.
    pub(crate) keys: Vec<(RouteId, Prefix)>,
    /// The open interval's nonzero byte counts, ascending by key id
    /// (exact backend only; empty when `sketch` is present).
    pub(crate) row: Vec<(KeyId, u64)>,
    pub(crate) state: ClassifierState,
    /// Sketch-backend open state: `(backend kind, serialized sketch)`.
    /// `None` for the exact backend — and its presence alone is what
    /// selects format version 3 on disk.
    pub(crate) sketch: Option<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// Intervals sealed (and durably emitted) when this snapshot was
    /// taken — the line count the output must be truncated to before
    /// resuming.
    pub fn intervals_sealed(&self) -> usize {
        self.open as usize
    }

    /// Packet accounting at snapshot time.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Packets the source had produced (parsed or malformed) at
    /// snapshot time — what [`skip_offered`] must replay past.
    pub fn offered(&self) -> u64 {
        self.stats.offered
    }

    /// The detector name recorded in the fingerprint.
    pub fn detector(&self) -> &str {
        &self.config.detector
    }

    /// Routing-table generation recorded in the fingerprint: the number
    /// of update batches the (live) table had applied at snapshot time,
    /// 0 for frozen tables. A resuming driver must replay the first
    /// `generation` batches of its schedule onto a fresh live table
    /// before [`crate::PipelineBuilder::resume`].
    pub fn generation(&self) -> u64 {
        self.config.generation
    }

    /// Serialize (header + checksummed payload).
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(&self.to_bytes())
    }

    /// The complete on-disk image.
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode();
        let version = if self.sketch.is_none() { VERSION } else { VERSION_SKETCH };
        let mut bytes = Vec::with_capacity(24 + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Read and verify a checkpoint.
    pub fn read_from<R: Read>(input: &mut R) -> Result<Self, CheckpointError> {
        let mut head = [0u8; 24];
        input.read_exact(&mut head)?;
        if head[..8] != MAGIC {
            return Err(CheckpointError::Format("bad magic".to_string()));
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if version != VERSION && version != VERSION_SKETCH {
            return Err(CheckpointError::Format(format!(
                "unsupported version {version} (this build reads {VERSION} and {VERSION_SKETCH})"
            )));
        }
        let len = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
        let expected = u32::from_le_bytes(head[20..24].try_into().expect("4 bytes"));
        // Read through `take` so a corrupt length field cannot trigger
        // a huge up-front allocation: memory stays bounded by what the
        // stream actually holds.
        let mut payload = Vec::new();
        input.take(len).read_to_end(&mut payload).map_err(CheckpointError::Io)?;
        if (payload.len() as u64) < len {
            return Err(CheckpointError::Format(format!(
                "payload truncated: header declares {len} bytes, stream holds {}",
                payload.len()
            )));
        }
        let mut probe = [0u8; 1];
        if input.read(&mut probe).map_err(CheckpointError::Io)? != 0 {
            return Err(CheckpointError::Format("trailing bytes after payload".to_string()));
        }
        let actual = crc32(&payload);
        if actual != expected {
            return Err(CheckpointError::Checksum { expected, actual });
        }
        Self::decode(&payload, version)
    }

    /// Read and verify a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::read_from(&mut File::open(path)?)
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Vec::new();
        // Configuration fingerprint.
        w.extend_from_slice(&self.config.interval_secs.to_le_bytes());
        w.extend_from_slice(&self.config.start_unix.to_le_bytes());
        put_opt_u64(&mut w, self.config.n_intervals);
        w.extend_from_slice(&self.config.gamma.to_bits().to_le_bytes());
        match self.config.scheme {
            Scheme::SingleFeature => w.push(0),
            Scheme::LatentHeat { window } => {
                w.push(1);
                w.extend_from_slice(&(window as u64).to_le_bytes());
            }
            Scheme::Hysteresis { enter, exit } => {
                w.push(2);
                w.extend_from_slice(&enter.to_bits().to_le_bytes());
                w.extend_from_slice(&exit.to_bits().to_le_bytes());
            }
        }
        put_str(&mut w, &self.config.detector);
        w.extend_from_slice(&self.config.n_routes.to_le_bytes());
        w.extend_from_slice(&self.config.generation.to_le_bytes());
        // Progress.
        w.extend_from_slice(&self.open.to_le_bytes());
        w.extend_from_slice(&self.far_future_streak.to_le_bytes());
        let s = &self.stats;
        for v in [
            s.offered,
            s.attributed,
            s.attributed_bytes,
            s.unroutable,
            s.out_of_window,
            s.malformed,
            s.late,
        ] {
            w.extend_from_slice(&v.to_le_bytes());
        }
        // Key table.
        w.extend_from_slice(&(self.keys.len() as u64).to_le_bytes());
        for &(route, prefix) in &self.keys {
            w.extend_from_slice(&route.to_le_bytes());
            w.extend_from_slice(&prefix.bits().to_le_bytes());
            w.push(prefix.len());
        }
        // Open interval row.
        w.extend_from_slice(&(self.row.len() as u64).to_le_bytes());
        for &(key, bytes) in &self.row {
            w.extend_from_slice(&key.to_le_bytes());
            w.extend_from_slice(&bytes.to_le_bytes());
        }
        // Classifier state.
        let st = &self.state;
        w.extend_from_slice(&(st.interval as u64).to_le_bytes());
        put_opt_f64(&mut w, st.smoothed);
        w.extend_from_slice(&st.sum_t.to_bits().to_le_bytes());
        w.extend_from_slice(&(st.per_key.len() as u64).to_le_bytes());
        for &(key, sum, live) in &st.per_key {
            w.extend_from_slice(&key.to_le_bytes());
            w.extend_from_slice(&sum.to_bits().to_le_bytes());
            w.extend_from_slice(&live.to_le_bytes());
        }
        w.extend_from_slice(&(st.history.len() as u64).to_le_bytes());
        for (t_term, snapshot) in &st.history {
            w.extend_from_slice(&t_term.to_bits().to_le_bytes());
            w.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
            for &(key, rate) in snapshot {
                w.extend_from_slice(&key.to_le_bytes());
                w.extend_from_slice(&rate.to_bits().to_le_bytes());
            }
        }
        w.extend_from_slice(&(st.members.len() as u64).to_le_bytes());
        for &key in &st.members {
            w.extend_from_slice(&key.to_le_bytes());
        }
        // Version-3 tail: sketch-backend kind + payload. Absent (and the
        // image stays a byte-identical version 2) for the exact backend.
        if let Some((kind, sketch)) = &self.sketch {
            put_str(&mut w, kind);
            w.extend_from_slice(&(sketch.len() as u64).to_le_bytes());
            w.extend_from_slice(sketch);
        }
        w
    }

    fn decode(payload: &[u8], version: u32) -> Result<Self, CheckpointError> {
        let mut r = Cursor { data: payload, at: 0 };
        let interval_secs = r.u64()?;
        let start_unix = r.u64()?;
        let n_intervals = r.opt_u64()?;
        let gamma = f64::from_bits(r.u64()?);
        let scheme = match r.u8()? {
            0 => Scheme::SingleFeature,
            1 => Scheme::LatentHeat {
                window: usize::try_from(r.u64()?)
                    .map_err(|_| CheckpointError::Format("window too large".to_string()))?,
            },
            2 => Scheme::Hysteresis {
                enter: f64::from_bits(r.u64()?),
                exit: f64::from_bits(r.u64()?),
            },
            t => return Err(CheckpointError::Format(format!("unknown scheme tag {t}"))),
        };
        let detector = r.string()?;
        let n_routes = r.u64()?;
        let generation = r.u64()?;
        let open = r.u64()?;
        let far_future_streak = r.u32()?;
        let stats = PipelineStats {
            offered: r.u64()?,
            attributed: r.u64()?,
            attributed_bytes: r.u64()?,
            unroutable: r.u64()?,
            out_of_window: r.u64()?,
            malformed: r.u64()?,
            late: r.u64()?,
        };
        let n_keys = r.count(9, "keys")?;
        let mut keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let route = r.u32()?;
            let bits = r.u32()?;
            let len = r.u8()?;
            let prefix = Prefix::from_u32(bits, len)
                .map_err(|e| CheckpointError::Format(format!("bad key prefix: {e}")))?;
            keys.push((route, prefix));
        }
        let n_row = r.count(12, "row")?;
        let mut row = Vec::with_capacity(n_row);
        for _ in 0..n_row {
            row.push((r.u32()?, r.u64()?));
        }
        let interval = usize::try_from(r.u64()?)
            .map_err(|_| CheckpointError::Format("interval index too large".to_string()))?;
        let smoothed = r.opt_f64()?;
        let sum_t = f64::from_bits(r.u64()?);
        let n_per_key = r.count(16, "per-key state")?;
        let mut per_key = Vec::with_capacity(n_per_key);
        for _ in 0..n_per_key {
            per_key.push((r.u32()?, f64::from_bits(r.u64()?), r.u32()?));
        }
        let n_history = r.count(16, "history")?;
        let mut history = Vec::with_capacity(n_history);
        for _ in 0..n_history {
            let t_term = f64::from_bits(r.u64()?);
            let n_snap = r.count(8, "snapshot")?;
            let mut snapshot = Vec::with_capacity(n_snap);
            for _ in 0..n_snap {
                snapshot.push((r.u32()?, f32::from_bits(r.u32()?)));
            }
            history.push((t_term, snapshot));
        }
        let n_members = r.count(4, "members")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.u32()?);
        }
        let sketch = if version == VERSION_SKETCH {
            let kind = r.string()?;
            let n_sketch = r.count(1, "sketch payload")?;
            let bytes = r.take(n_sketch)?.to_vec();
            if !row.is_empty() {
                return Err(CheckpointError::Format(
                    "sketch checkpoint carries a dense row".to_string(),
                ));
            }
            Some((kind, bytes))
        } else {
            None
        };
        r.end()?;
        if interval as u64 != open {
            return Err(CheckpointError::Format(format!(
                "classifier at interval {interval} but {open} intervals sealed"
            )));
        }
        Ok(Checkpoint {
            config: CheckpointConfig {
                interval_secs,
                start_unix,
                n_intervals,
                gamma,
                scheme,
                detector,
                n_routes,
                generation,
            },
            open,
            far_future_streak,
            stats,
            keys,
            row,
            state: ClassifierState {
                interval,
                smoothed,
                sum_t,
                per_key,
                history,
                members,
            },
            sketch,
        })
    }
}

fn put_opt_u64(w: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            w.push(1);
            w.extend_from_slice(&x.to_le_bytes());
        }
        None => w.push(0),
    }
}

fn put_opt_f64(w: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            w.push(1);
            w.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        None => w.push(0),
    }
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    w.extend_from_slice(&(s.len() as u32).to_le_bytes());
    w.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| CheckpointError::Format("payload shorter than declared".to_string()))?;
        let slice = &self.data[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(CheckpointError::Format(format!("bad option tag {t}"))),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        Ok(self.opt_u64()?.map(f64::from_bits))
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Format("non-UTF-8 string".to_string()))
    }

    /// A length prefix, sanity-bounded by the bytes remaining (each
    /// element needs at least `min_elem` bytes) so a corrupt count
    /// cannot trigger a huge allocation before the decode fails.
    fn count(&mut self, min_elem: usize, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.data.len() - self.at) as u64;
        if n.saturating_mul(min_elem as u64) > remaining {
            return Err(CheckpointError::Format(format!(
                "{what} count {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }

    fn end(&self) -> Result<(), CheckpointError> {
        if self.at != self.data.len() {
            return Err(CheckpointError::Format(format!(
                "{} bytes of trailing payload",
                self.data.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Periodic atomic checkpoint writer for [`Pipeline::run_checkpointed`].
///
/// Writes `eleph.ckpt` inside its directory every `every` sealed
/// intervals (checked at source chunk boundaries), via temp file +
/// fsync + rename so a crash at any instruction leaves either the old
/// or the new checkpoint complete on disk — never a torn one.
pub struct Checkpointer {
    path: PathBuf,
    tmp: PathBuf,
    every: usize,
    next_at: usize,
}

/// File name a [`Checkpointer`] maintains inside its directory.
pub const CHECKPOINT_FILE: &str = "eleph.ckpt";

impl Checkpointer {
    /// Checkpoint into `dir` (created if missing) every `every` sealed
    /// intervals (`every` ≥ 1).
    pub fn new(dir: impl AsRef<Path>, every: usize) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        Ok(Checkpointer {
            path: dir.join(CHECKPOINT_FILE),
            tmp: dir.join(format!("{CHECKPOINT_FILE}.tmp")),
            every: every.max(1),
            next_at: every.max(1),
        })
    }

    /// The checkpoint file this writer maintains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Checkpoint now if the cadence says one is due. Returns whether a
    /// checkpoint was written.
    pub fn maybe_write<D: ThresholdDetector>(
        &mut self,
        pipeline: &mut Pipeline<'_, D>,
    ) -> crate::Result<bool> {
        if pipeline.intervals_sealed() < self.next_at {
            return Ok(false);
        }
        self.write(pipeline)?;
        Ok(true)
    }

    /// Write a checkpoint unconditionally (atomic rename protocol).
    pub fn write<D: ThresholdDetector>(
        &mut self,
        pipeline: &mut Pipeline<'_, D>,
    ) -> crate::Result<()> {
        let sealed = pipeline.intervals_sealed();
        let bytes = pipeline.export_checkpoint().to_bytes();
        let io = |e: io::Error| PipelineError::Checkpoint(CheckpointError::Io(e));
        let mut file = File::create(&self.tmp).map_err(io)?;
        if pipeline.crash_now(CrashPoint::MidCheckpointWrite, sealed) {
            // Simulate dying mid-write: half the image reaches the temp
            // file, the rename never happens, the previous checkpoint
            // survives untouched.
            file.write_all(&bytes[..bytes.len() / 2]).map_err(io)?;
            let _ = file.sync_all();
            return Err(PipelineError::Crash(CrashPoint::MidCheckpointWrite));
        }
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        fs::rename(&self.tmp, &self.path).map_err(io)?;
        // Make the rename itself durable where the platform allows
        // opening directories; failure here cannot corrupt anything.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.next_at = sealed + self.every;
        Ok(())
    }
}

/// Advance a fresh source past the records a checkpointed run had
/// already consumed: `target` is the checkpoint's
/// [`Checkpoint::offered`] count (parsed + malformed).
///
/// Chunking is deterministic, so pulling whole chunks reproduces the
/// original consumption exactly and the count lands on a chunk
/// boundary; landing past it means the source does not match the
/// checkpoint (different capture, different fault seed) and is a
/// [`CheckpointError::Mismatch`].
pub fn skip_offered<S: PacketSource>(source: &mut S, target: u64) -> crate::Result<()> {
    let mut buf = Vec::new();
    let mut parsed: u64 = 0;
    loop {
        let consumed = parsed + source.malformed();
        if consumed == target {
            return Ok(());
        }
        if consumed > target {
            return Err(PipelineError::Checkpoint(CheckpointError::Mismatch(format!(
                "source chunk boundary at {consumed} records overshoots the checkpoint's {target} \
                 — the source does not match the checkpointed run"
            ))));
        }
        buf.clear();
        match source.next_chunk(&mut buf)? {
            0 if parsed + source.malformed() < target => {
                return Err(PipelineError::Checkpoint(CheckpointError::Mismatch(format!(
                    "source exhausted after {} records but the checkpoint consumed {target}",
                    parsed + source.malformed()
                ))));
            }
            n => parsed += n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            config: CheckpointConfig {
                interval_secs: 300,
                start_unix: 995_990_400,
                n_intervals: Some(12),
                gamma: 0.9,
                scheme: Scheme::LatentHeat { window: 12 },
                detector: "0.80-constant-load".to_string(),
                n_routes: 3,
                generation: 4,
            },
            open: 5,
            far_future_streak: 2,
            stats: PipelineStats {
                offered: 100,
                attributed: 90,
                attributed_bytes: 12_345,
                unroutable: 4,
                out_of_window: 3,
                malformed: 2,
                late: 1,
            },
            keys: vec![
                (2, "10.0.0.0/8".parse().expect("prefix")),
                (0, "192.168.0.0/16".parse().expect("prefix")),
            ],
            row: vec![(0, 700), (1, 42)],
            state: ClassifierState {
                interval: 5,
                smoothed: Some(123.456),
                sum_t: 900.25,
                per_key: vec![(0, 50.5, 2), (1, 7.0, 1)],
                history: vec![
                    (100.0, vec![(0, 25.25f32), (1, 7.0)]),
                    (200.5, vec![(0, 25.25f32)]),
                ],
                members: vec![],
            },
            sketch: None,
        }
    }

    /// A sketch-backend snapshot: empty dense row, version-3 tail.
    fn sample_sketch() -> Checkpoint {
        let mut ckpt = sample();
        ckpt.row = Vec::new();
        ckpt.sketch = Some(("spacesaving".to_string(), vec![1, 0, 0, 0, 7, 7, 7]));
        ckpt
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let original = sample();
        let bytes = original.to_bytes();
        let decoded = Checkpoint::read_from(&mut &bytes[..]).expect("round trip");
        assert_eq!(decoded.config, original.config);
        assert_eq!(decoded.config.gamma.to_bits(), original.config.gamma.to_bits());
        assert_eq!(decoded.open, original.open);
        assert_eq!(decoded.far_future_streak, original.far_future_streak);
        assert_eq!(decoded.stats, original.stats);
        assert_eq!(decoded.keys, original.keys);
        assert_eq!(decoded.row, original.row);
        assert_eq!(decoded.state, original.state);
        assert_eq!(decoded.sketch, None);
        assert_eq!(bytes[8..12], VERSION.to_le_bytes(), "exact images stay version 2");
    }

    #[test]
    fn sketch_round_trip_is_version_3() {
        let original = sample_sketch();
        let bytes = original.to_bytes();
        assert_eq!(bytes[8..12], VERSION_SKETCH.to_le_bytes());
        let decoded = Checkpoint::read_from(&mut &bytes[..]).expect("round trip");
        assert_eq!(decoded.state, original.state);
        assert_eq!(decoded.row, Vec::new());
        assert_eq!(decoded.sketch, original.sketch);
    }

    #[test]
    fn sketch_tail_mismatches_are_rejected() {
        // A v3 header over a tail-less v2 payload must not decode.
        let payload = sample().encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION_SKETCH.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(Checkpoint::read_from(&mut &bytes[..]).is_err());
        // And a v2 header over a payload carrying a tail leaves trailing
        // bytes — also rejected.
        let payload = sample_sketch().encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Checkpoint::read_from(&mut &bytes[..]),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn sketch_image_rejects_flips_and_truncations() {
        let bytes = sample_sketch().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            assert!(Checkpoint::read_from(&mut &bad[..]).is_err(), "flip at byte {i} accepted");
        }
        for keep in 0..bytes.len() {
            assert!(
                Checkpoint::read_from(&mut &bytes[..keep]).is_err(),
                "truncation to {keep} bytes accepted"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            assert!(
                Checkpoint::read_from(&mut &bad[..]).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn payload_corruption_is_a_checksum_error() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        match Checkpoint::read_from(&mut &bytes[..]) {
            Err(CheckpointError::Checksum { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                Checkpoint::read_from(&mut &bytes[..keep]).is_err(),
                "truncation to {keep} bytes accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::read_from(&mut &bytes[..]),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_format_errors() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::read_from(&mut &bytes[..]),
            Err(CheckpointError::Format(_))
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        match Checkpoint::read_from(&mut &bytes[..]) {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_count_fails_without_huge_allocation() {
        // Corrupting a length prefix inside the payload flips the CRC,
        // so craft an image whose *header* is rewritten around a
        // corrupted payload: the decoder must reject the count, not
        // allocate petabytes.
        let mut payload = sample().encode();
        // keys count sits right after config + progress; stomp the last
        // 8 payload bytes instead (members count) to u64::MAX.
        let at = payload.len() - 12;
        payload[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match Checkpoint::read_from(&mut &bytes[..]) {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("count"), "{msg}"),
            other => panic!("expected count rejection, got {other:?}"),
        }
    }
}
