//! Packet sources: where a [`crate::Pipeline`] gets its packets.

use std::io::Read;

use eleph_packet::pcap::PcapReader;
use eleph_packet::{parse_buf_meta, LinkType, PacketMeta};
use eleph_trace::{FaultAction, FaultInjector, FaultStats, PacketSynth, RateTrace};

/// Records decoded per [`PacketSource::next_chunk`] call on the pcap
/// path: large enough to amortize the virtual call, small enough that
/// the chunk buffer stays cache-resident.
const SOURCE_CHUNK: usize = 256;

/// A supplier of time-ordered packet metadata, consumed chunk-wise.
///
/// The pipeline seals measurement intervals as packet timestamps cross
/// interval boundaries, so sources must yield packets in
/// non-decreasing *interval* order (exact timestamp order within an
/// interval does not matter). Packets arriving for an already-sealed
/// interval are counted as `late` and dropped, never silently binned.
pub trait PacketSource {
    /// Append the next chunk of packets to `out` and return how many
    /// were appended. `Ok(0)` means the stream is exhausted —
    /// implementations must keep decoding past malformed records (and
    /// empty synthetic intervals) internally rather than returning a
    /// spurious zero mid-stream.
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize>;

    /// Raw packets seen so far that failed packet-level parsing. The
    /// pipeline folds this into its accounting when the source drains,
    /// keeping the conservation invariant (`offered` counts every
    /// captured record, parseable or not).
    fn malformed(&self) -> u64 {
        0
    }
}

/// A `&mut` source is a source: lets callers keep ownership across
/// [`crate::Pipeline::run`] to read source-side state (fault counters,
/// malformed totals) after the run.
impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        (**self).next_chunk(out)
    }

    fn malformed(&self) -> u64 {
        (**self).malformed()
    }
}

/// Streams a pcap capture: structural record framing via
/// [`PcapReader::next_record_into`] (one reused capture buffer, no
/// per-record allocation), packet parsing via [`parse_buf_meta`].
///
/// Structural pcap errors abort the run — a damaged file is not a
/// measurement. Packets that fail *packet* parsing (bad IPv4 header,
/// truncated transport) are counted via [`PacketSource::malformed`] and
/// skipped, exactly like the batch `aggregate_pcap` path.
pub struct PcapSource<R: Read> {
    reader: PcapReader<R>,
    link: LinkType,
    buf: Vec<u8>,
    malformed: u64,
}

impl<R: Read> PcapSource<R> {
    /// Open a pcap stream (reads and validates the file header).
    pub fn new(input: R) -> eleph_packet::Result<Self> {
        let reader = PcapReader::new(input)?;
        let link = LinkType::from_code(reader.header().linktype)?;
        Ok(PcapSource {
            reader,
            link,
            buf: Vec::new(),
            malformed: 0,
        })
    }

    /// The capture's link type.
    pub fn link(&self) -> LinkType {
        self.link
    }
}

impl<R: Read> PacketSource for PcapSource<R> {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        let base = out.len();
        loop {
            match self.reader.next_record_into(&mut self.buf)? {
                None => return Ok(out.len() - base),
                Some(head) => match parse_buf_meta(self.link, &self.buf, &head) {
                    Ok(meta) => {
                        out.push(meta);
                        if out.len() - base >= SOURCE_CHUNK {
                            return Ok(out.len() - base);
                        }
                    }
                    Err(_) => self.malformed += 1,
                },
            }
        }
    }

    fn malformed(&self) -> u64 {
        self.malformed
    }
}

/// A [`PcapSource`] with a [`FaultInjector`] between the capture and
/// the parser: every record is offered to the injector first, so drops
/// vanish before parsing while corruption/truncation usually surface as
/// malformed packets — the same path `eleph run`'s `--fault-*` flags
/// exercise for degraded-input drills.
///
/// Deterministic in the injector's seed: replaying the same capture
/// with the same config reproduces the identical packet stream, which
/// is what lets a checkpointed faulted run resume exactly (the resume
/// replays the skipped records through a fresh injector, realigning the
/// RNG stream).
pub struct FaultedPcapSource<R: Read> {
    reader: PcapReader<R>,
    link: LinkType,
    injector: FaultInjector,
    buf: Vec<u8>,
    malformed: u64,
}

impl<R: Read> FaultedPcapSource<R> {
    /// Open a pcap stream with fault injection.
    pub fn new(input: R, injector: FaultInjector) -> eleph_packet::Result<Self> {
        let reader = PcapReader::new(input)?;
        let link = LinkType::from_code(reader.header().linktype)?;
        Ok(FaultedPcapSource {
            reader,
            link,
            injector,
            buf: Vec::new(),
            malformed: 0,
        })
    }

    /// What the injector did so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }
}

impl<R: Read> PacketSource for FaultedPcapSource<R> {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        let base = out.len();
        loop {
            match self.reader.next_record_into(&mut self.buf)? {
                None => return Ok(out.len() - base),
                Some(head) => {
                    if self.injector.apply(&mut self.buf) == FaultAction::Dropped {
                        // Dropped before capture from the pipeline's
                        // point of view: not offered, not malformed.
                        continue;
                    }
                    match parse_buf_meta(self.link, &self.buf, &head) {
                        Ok(meta) => {
                            out.push(meta);
                            if out.len() - base >= SOURCE_CHUNK {
                                return Ok(out.len() - base);
                            }
                        }
                        Err(_) => self.malformed += 1,
                    }
                }
            }
        }
    }

    fn malformed(&self) -> u64 {
        self.malformed
    }
}

/// Asynchronous zero-copy pcap ingest: the capture is scanned by a
/// dedicated framer thread and parsed by a pool of worker threads (see
/// [`eleph_packet::pool::PooledReader`]), so record framing and packet
/// decoding overlap with attribution and classification instead of
/// running inline on the pipeline thread.
///
/// Delivery is **deterministic and identical for every worker count**:
/// packets arrive in capture order, chunk boundaries fall every
/// [`eleph_packet::pool::FRAME_BATCH`] raw records, malformed counts
/// accrue in delivery order, and structural errors abort at the exact
/// record where [`PcapSource`] would. Checkpoints taken at chunk
/// boundaries therefore resume against a `PooledPcapSource` with any
/// other worker count.
pub struct PooledPcapSource {
    reader: eleph_packet::pool::PooledReader,
}

impl PooledPcapSource {
    /// Spawn the ingest stage over an in-memory capture with `workers`
    /// parser threads (clamped to at least 1); validates the capture
    /// header before any thread starts.
    pub fn new(data: std::sync::Arc<Vec<u8>>, workers: usize) -> eleph_packet::Result<Self> {
        Ok(PooledPcapSource {
            reader: eleph_packet::pool::PooledReader::new(data, workers)?,
        })
    }

    /// The capture's link type.
    pub fn link(&self) -> LinkType {
        self.reader.link()
    }
}

impl PacketSource for PooledPcapSource {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        self.reader.next_metas(out)
    }

    fn malformed(&self) -> u64 {
        self.reader.malformed()
    }
}

/// Synthesizes packets from a [`RateTrace`] workload, one interval per
/// chunk — the pipeline's memory stays bounded by a single interval's
/// packet population, however long the trace.
///
/// Packets are identical to what [`PacketSynth`] would write to a pcap
/// (same per-flow RNG streams), so a `TraceSource` run classifies
/// exactly like aggregating that pcap.
pub struct TraceSource<'a> {
    synth: PacketSynth<'a>,
    intervals: std::ops::Range<usize>,
}

impl<'a> TraceSource<'a> {
    /// Source over the whole trace with the default packet mix.
    pub fn new(trace: &'a RateTrace) -> Self {
        let n = trace.n_intervals();
        TraceSource {
            synth: PacketSynth::new(trace),
            intervals: 0..n,
        }
    }

    /// Source over an interval window of the trace.
    pub fn window(trace: &'a RateTrace, intervals: std::ops::Range<usize>) -> Self {
        TraceSource {
            synth: PacketSynth::new(trace),
            intervals,
        }
    }

    /// Source from a pre-configured synthesizer (custom packet mix).
    pub fn from_synth(synth: PacketSynth<'a>, intervals: std::ops::Range<usize>) -> Self {
        TraceSource { synth, intervals }
    }
}

impl PacketSource for TraceSource<'_> {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        let base = out.len();
        // Idle intervals synthesize no packets; skip them rather than
        // returning a spurious end-of-stream (the pipeline seals the
        // gap from the next packet's timestamp).
        while out.len() == base {
            let Some(n) = self.intervals.next() else {
                return Ok(0);
            };
            self.synth.synthesize_window(n..n + 1, |meta| out.push(meta));
        }
        Ok(out.len() - base)
    }
}

/// An in-memory packet stream: feeds pre-parsed metadata in chunks.
/// Useful for tests, replay buffers, and adapting capture frameworks
/// that already deliver decoded packets.
pub struct MetaSource {
    metas: Vec<PacketMeta>,
    pos: usize,
}

impl MetaSource {
    /// Source over an owned packet vector (must be interval-ordered).
    pub fn new(metas: Vec<PacketMeta>) -> Self {
        MetaSource { metas, pos: 0 }
    }
}

impl FromIterator<PacketMeta> for MetaSource {
    fn from_iter<I: IntoIterator<Item = PacketMeta>>(iter: I) -> Self {
        MetaSource::new(iter.into_iter().collect())
    }
}

impl PacketSource for MetaSource {
    fn next_chunk(&mut self, out: &mut Vec<PacketMeta>) -> eleph_packet::Result<usize> {
        let n = SOURCE_CHUNK.min(self.metas.len() - self.pos);
        out.extend_from_slice(&self.metas[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}
