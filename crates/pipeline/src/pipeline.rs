//! The streaming pipeline proper: chunked attribution, interval
//! sealing, online classification, sink fan-out.

use std::fmt;

use eleph_bgp::{BgpTable, FrozenBgpTable, LiveBgpTable, RouteId, TableView, UpdateBatch};
use eleph_core::{
    ClassifierState, ConstantLoadDetector, ExactDense, IntervalOutcome, OnlineClassifier, Scheme,
    StateBackend, StateBackendConfig, ThresholdDetector, PAPER_BETA, PAPER_GAMMA,
    PAPER_LATENT_WINDOW,
};
use eleph_flow::{attribute_metas, FrozenTableRef, KeyAllocator, KeyId};
use eleph_net::Prefix;
use eleph_packet::{LinkType, PacketMeta};
use eleph_trace::{CrashPoint, CrashSwitch};

use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointError, Checkpointer};
use crate::shard::ShardEngine;
use crate::sink::{SealedInterval, Sink};
use crate::source::PacketSource;

/// Packet chunks pulled from a [`PacketSource`] are buffered here
/// before attribution.
const RUN_BUFFER: usize = 1024;

/// Largest interval gap a single packet may open in *unbounded* mode
/// (~95 years of 5-minute slots). Every skipped interval is sealed —
/// classified and delivered to every sink — so without a cap one
/// structurally-valid record with a corrupt far-future timestamp would
/// hang the pipeline sealing billions of empty intervals; past the cap
/// the packet is counted out-of-window instead. Bounded runs are capped
/// by `n_intervals` already.
const MAX_UNBOUNDED_GAP: u64 = 10_000_000;

/// How many *consecutive* beyond-the-gap-cap packets an unbounded
/// pipeline tolerates before failing loudly. Isolated corrupt
/// timestamps are skipped and forgotten (any in-horizon packet resets
/// the streak), but a persistent streak means the stream really has
/// jumped past the supported horizon — silently discarding all further
/// traffic as out-of-window would be far worse than an error.
const FAR_FUTURE_TOLERANCE: u32 = 64;

/// Errors a pipeline run can produce.
#[derive(Debug)]
pub enum PipelineError {
    /// Structural capture error from the packet source (damaged pcap).
    Packet(eleph_packet::PacketError),
    /// A sink failed to accept an interval — surfaced at the seal that
    /// hit it (a full disk fails loudly mid-run, not at the end).
    Sink(std::io::Error),
    /// Reading, writing, or applying a checkpoint failed.
    Checkpoint(CheckpointError),
    /// An injected process fault tripped (failure-injection harness
    /// only; see [`eleph_trace::CrashSwitch`]). The run aborted exactly
    /// as a kill at that point would.
    Crash(CrashPoint),
    /// An unbounded stream persistently jumped further ahead than
    /// [`MAX_UNBOUNDED_GAP`] intervals — the monitor cannot seal that
    /// many empty intervals, and dropping the traffic silently would
    /// corrupt the measurement. Restart the pipeline with a fresh
    /// window (or bound it with `n_intervals`).
    GapExceeded {
        /// The open (next unsealed) interval when the streak tripped.
        open: usize,
        /// The interval index the stream kept asking for.
        interval: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Packet(e) => write!(f, "packet source error: {e}"),
            PipelineError::Sink(e) => write!(f, "sink error: {e}"),
            PipelineError::Checkpoint(e) => write!(f, "{e}"),
            PipelineError::Crash(point) => write!(f, "injected crash at {point:?}"),
            PipelineError::GapExceeded { open, interval } => write!(
                f,
                "stream jumped from open interval {open} to interval {interval}, \
                 past the supported unbounded gap; restart with a fresh window"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<eleph_packet::PacketError> for PipelineError {
    fn from(e: eleph_packet::PacketError) -> Self {
        PipelineError::Packet(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Sink(e)
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Pipeline result type.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Accounting for every packet offered to a [`Pipeline`]. Identical to
/// the batch `AggregatorStats` plus `late`: packets whose interval was
/// already sealed when they arrived (out-of-order input), which a
/// streaming monitor must reject rather than rewrite history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets attributed to a prefix and binned.
    pub attributed: u64,
    /// Bytes attributed.
    pub attributed_bytes: u64,
    /// Packets whose destination matched no table entry.
    pub unroutable: u64,
    /// Packets timestamped outside the configured window.
    pub out_of_window: u64,
    /// Raw packets that failed to parse.
    pub malformed: u64,
    /// In-window packets arriving after their interval was sealed.
    pub late: u64,
}

impl PipelineStats {
    /// Conservation check: all offered packets are accounted for.
    pub fn is_conserved(&self) -> bool {
        self.attributed + self.unroutable + self.out_of_window + self.malformed + self.late
            == self.offered
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Packet accounting for the whole run.
    pub stats: PipelineStats,
    /// Number of intervals sealed (and emitted to the sinks).
    pub intervals: usize,
    /// The key table: `keys[id]` is the prefix behind [`KeyId`] `id`,
    /// in global first-seen order — the same order the batch
    /// aggregator's matrix would use.
    pub keys: Vec<Prefix>,
    /// Consecutive far-future rejects at end of run (see
    /// [`Pipeline::far_future_streak`]); nonzero means the capture
    /// ended on suspicious timestamps.
    pub far_future_streak: u32,
    /// Routing-table generation at end of run: 0 for a frozen table,
    /// the number of update batches applied for a live one.
    pub generation: u64,
    /// Scheduled route-update batches applied over the whole run
    /// (counting batches replayed before a resume).
    pub route_updates_applied: u64,
    /// Distinct keys attributed over the run (`keys.len()`), reported
    /// separately so memory claims are reproducible from a summary
    /// alone.
    pub distinct_keys: usize,
    /// Resident footprint of the open-interval state backend in bytes:
    /// the dense-row footprint for the exact backend, the configured
    /// fixed budget for sketch backends.
    pub state_bytes: usize,
    /// Which state backend sealed the intervals (see
    /// [`eleph_core::StateBackendConfig::kind`]).
    pub state_backend: &'static str,
}

/// The routing table a pipeline attributes against: either a frozen
/// snapshot (generation 0 forever) or a live [`LiveBgpTable`] plus the
/// pinned [`TableView`] the hot path currently reads. Applying an
/// update batch re-pins the view; packets already attributed keep the
/// route ids (and therefore keys) the old generation gave them.
enum TableHandle<'t> {
    Frozen(FrozenTableRef<'t>),
    Live {
        table: &'t LiveBgpTable,
        view: TableView,
    },
}

impl TableHandle<'_> {
    /// Size of the route-id space: dense `0..len` for a frozen table,
    /// the all-time id count (retired ids included) for a live one.
    fn id_space(&self) -> usize {
        match self {
            TableHandle::Frozen(t) => t.get().len(),
            TableHandle::Live { view, .. } => view.n_ids(),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            TableHandle::Frozen(_) => 0,
            TableHandle::Live { view, .. } => view.generation(),
        }
    }

    /// The prefix behind `route` (live tables resolve retired ids too,
    /// which checkpoint revalidation relies on).
    fn prefix(&self, route: RouteId) -> Prefix {
        match self {
            TableHandle::Frozen(t) => t.get().prefix(route),
            TableHandle::Live { view, .. } => view.prefix(route),
        }
    }

    fn attribute(&self, metas: &[PacketMeta], routes: &mut Vec<Option<RouteId>>) {
        match self {
            TableHandle::Frozen(t) => attribute_metas(t.get(), metas, routes),
            TableHandle::Live { view, .. } => attribute_metas(view, metas, routes),
        }
    }

    fn attribute_one(&self, dst: u32) -> Option<RouteId> {
        match self {
            TableHandle::Frozen(t) => t.get().attribute_id(dst),
            TableHandle::Live { view, .. } => view.attribute_id(dst),
        }
    }
}

/// Builder for [`Pipeline`]. Defaults: the paper's headline
/// configuration (0.8-constant-load detector, γ = 0.9, latent heat over
/// a 12-slot window), T = 300 s starting at Unix time 0, unbounded
/// interval count, no sinks.
///
/// A routing table ([`PipelineBuilder::table`] or
/// [`PipelineBuilder::frozen`]) is the one mandatory ingredient.
pub struct PipelineBuilder<'t, D> {
    table: Option<TableHandle<'t>>,
    updates: Vec<UpdateBatch>,
    interval_secs: u64,
    start_unix: u64,
    n_intervals: Option<usize>,
    detector: D,
    gamma: f64,
    scheme: Scheme,
    shards: usize,
    state: StateBackendConfig,
    sinks: Vec<Box<dyn Sink>>,
    crash: Option<CrashSwitch>,
}

impl Default for PipelineBuilder<'_, ConstantLoadDetector> {
    fn default() -> Self {
        PipelineBuilder {
            table: None,
            updates: Vec::new(),
            interval_secs: 300,
            start_unix: 0,
            n_intervals: None,
            detector: ConstantLoadDetector::new(PAPER_BETA),
            gamma: PAPER_GAMMA,
            scheme: Scheme::LatentHeat {
                window: PAPER_LATENT_WINDOW,
            },
            shards: 0,
            state: StateBackendConfig::Exact,
            sinks: Vec::new(),
            crash: None,
        }
    }
}

impl PipelineBuilder<'_, ConstantLoadDetector> {
    /// Start from the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<'t, D: ThresholdDetector> PipelineBuilder<'t, D> {
    /// Attribute against a read-optimized copy of `table` (frozen
    /// immediately; the pipeline does not borrow the live table).
    pub fn table(mut self, table: &BgpTable) -> Self {
        self.table = Some(TableHandle::Frozen(FrozenTableRef::Owned(Box::new(table.freeze()))));
        self
    }

    /// Attribute against an existing freeze (shared across pipelines).
    pub fn frozen(mut self, table: &'t FrozenBgpTable) -> Self {
        self.table = Some(TableHandle::Frozen(FrozenTableRef::Borrowed(table)));
        self
    }

    /// Attribute against a *live* table: update batches (applied by
    /// this pipeline's [`PipelineBuilder::route_updates`] schedule, or
    /// by the caller between chunks) take effect mid-stream without a
    /// refreeze. The pipeline pins a view at build time and re-pins
    /// after every batch it applies.
    pub fn live(mut self, table: &'t LiveBgpTable) -> Self {
        self.table = Some(TableHandle::Live {
            view: table.view(),
            table,
        });
        self
    }

    /// Replay this timed update schedule against the live table as the
    /// stream advances: each batch is applied immediately before the
    /// first offered packet whose timestamp reaches the batch time, so
    /// replay is a deterministic function of the packet stream.
    ///
    /// Batches must be in non-decreasing time order (as
    /// [`eleph_bgp::dump::read_updates`] guarantees); requires a
    /// [`PipelineBuilder::live`] table at build time.
    pub fn route_updates(mut self, schedule: Vec<UpdateBatch>) -> Self {
        self.updates = schedule;
        self
    }

    /// Measurement interval length in seconds (the paper's T).
    pub fn interval_secs(mut self, secs: u64) -> Self {
        self.interval_secs = secs;
        self
    }

    /// Unix time of the first interval's start.
    pub fn start_unix(mut self, start: u64) -> Self {
        self.start_unix = start;
        self
    }

    /// Bound the run to `n` intervals: packets past the window count as
    /// out-of-window, and [`Pipeline::finish`] seals through interval
    /// `n − 1` even if the capture ends early — exactly the batch
    /// aggregator's window semantics.
    pub fn n_intervals(mut self, n: usize) -> Self {
        self.n_intervals = Some(n);
        self
    }

    /// Remove the interval bound (the default): the pipeline runs for
    /// as long as the source produces packets, sealing every interval
    /// the stream crosses.
    pub fn unbounded(mut self) -> Self {
        self.n_intervals = None;
        self
    }

    /// Use this threshold detector (takes any [`ThresholdDetector`],
    /// including `Box<dyn ThresholdDetector>` for runtime selection).
    pub fn detector<E: ThresholdDetector>(self, detector: E) -> PipelineBuilder<'t, E> {
        PipelineBuilder {
            table: self.table,
            updates: self.updates,
            interval_secs: self.interval_secs,
            start_unix: self.start_unix,
            n_intervals: self.n_intervals,
            detector,
            gamma: self.gamma,
            scheme: self.scheme,
            shards: self.shards,
            state: self.state,
            sinks: self.sinks,
            crash: self.crash,
        }
    }

    /// EWMA smoothing factor γ for the threshold update.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Classification scheme (single-feature, latent heat, hysteresis).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Partition the online path over `n` worker threads, each owning
    /// the byte row and classifier state for `key % n == shard`. `0`
    /// (the default) runs everything inline on the pipeline thread;
    /// any `n ≥ 1` uses the sharded engine (so `--shards 1` measures
    /// pure coordination overhead). Output — thresholds, elephant sets,
    /// loads, checkpoints — is bit-identical for every value of `n`;
    /// see the `shard` module docs for why.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Seal intervals from this state backend
    /// ([`StateBackendConfig::Exact`], the default, keeps the dense byte
    /// row and is bit-identical to every earlier release; the sketch
    /// backends trade bounded memory for approximate snapshots — see
    /// [`eleph_core::sketch`]). Detection, smoothing and scheme state
    /// always run exactly on whatever snapshot the backend seals.
    ///
    /// Sketch backends run serially: combining one with
    /// [`PipelineBuilder::shards`] panics at build time (their whole
    /// point is that state no longer scales with keys, so there is no
    /// row to partition).
    pub fn state_backend(mut self, config: StateBackendConfig) -> Self {
        self.state = config;
        self
    }

    /// Attach a sink; every sealed interval is delivered to all sinks
    /// in attach order.
    pub fn sink(mut self, sink: impl Sink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Arm an injected process fault (failure-injection harness): the
    /// run aborts with [`PipelineError::Crash`] at the configured
    /// [`CrashPoint`], leaving partial durable state exactly as a kill
    /// at that instruction would.
    pub fn crash_switch(mut self, switch: CrashSwitch) -> Self {
        self.crash = Some(switch);
        self
    }

    /// Assemble the pipeline.
    ///
    /// # Panics
    ///
    /// Panics when no table was provided, when `interval_secs` is zero,
    /// when the window's nanosecond bounds overflow `u64` (the same
    /// validation as the batch aggregator), or when a route-update
    /// schedule was given without a live table / out of time order.
    pub fn build(self) -> Pipeline<'t, D> {
        let table = self.table.expect("PipelineBuilder needs a table (.table, .frozen or .live)");
        let update_ns = update_schedule(&table, &self.updates);
        // Shared with the batch aggregator so the two paths cannot
        // drift on window validation.
        let (start_ns, interval_ns) =
            eleph_flow::window_bounds_ns(self.interval_secs, self.start_unix);
        let n_routes = table.id_space();
        let secs = self.interval_secs as f64;
        let engine = match self.state.build() {
            Some(backend) => {
                assert_eq!(
                    self.shards, 0,
                    "sketch state backends run serially (--state {} is incompatible with shards)",
                    self.state.kind()
                );
                Engine::Sketch {
                    classifier: OnlineClassifier::new(self.detector, self.gamma, self.scheme),
                    backend,
                    snapshot: Vec::new(),
                }
            }
            None if self.shards == 0 => {
                Engine::serial(OnlineClassifier::new(self.detector, self.gamma, self.scheme))
            }
            None => Engine::Sharded(ShardEngine::new(
                self.detector,
                self.gamma,
                self.scheme,
                self.shards,
                secs,
            )),
        };
        Pipeline {
            table,
            updates: self.updates,
            update_ns,
            next_update: 0,
            interval_secs: self.interval_secs,
            secs,
            start_unix: self.start_unix,
            start_ns,
            interval_ns,
            n_intervals: self.n_intervals,
            engine,
            sinks: self.sinks,
            key_alloc: KeyAllocator::new(n_routes),
            route_scratch: Vec::new(),
            far_future_streak: 0,
            keys: Vec::new(),
            open: 0,
            stats: PipelineStats::default(),
            crash: self.crash,
        }
    }

    /// Assemble a pipeline that *continues* a checkpointed run instead
    /// of starting fresh.
    ///
    /// The builder must be configured identically to the run that wrote
    /// the snapshot — same table, interval geometry, detector, γ and
    /// scheme; the checkpoint's fingerprint is validated against every
    /// one of them and a [`CheckpointError::Mismatch`] names the first
    /// disagreement. The caller is responsible for (a) truncating
    /// durable sink output to [`Checkpoint::intervals_sealed`] records
    /// (see [`crate::RotatingJsonlSink::resume`]) *before* attaching the
    /// sinks, and (b) advancing the packet source past
    /// [`Checkpoint::offered`] records (see [`crate::skip_offered`]).
    ///
    /// # Panics
    ///
    /// Panics when no table was provided (same contract as
    /// [`PipelineBuilder::build`]).
    pub fn resume(self, ckpt: &Checkpoint) -> std::result::Result<Pipeline<'t, D>, CheckpointError> {
        let mismatch = |what: &str, have: String, want: String| {
            CheckpointError::Mismatch(format!("{what}: pipeline has {have}, checkpoint has {want}"))
        };
        let c = &ckpt.config;
        if self.interval_secs != c.interval_secs {
            return Err(mismatch(
                "interval_secs",
                self.interval_secs.to_string(),
                c.interval_secs.to_string(),
            ));
        }
        if self.start_unix != c.start_unix {
            return Err(mismatch(
                "start_unix",
                self.start_unix.to_string(),
                c.start_unix.to_string(),
            ));
        }
        if self.n_intervals.map(|n| n as u64) != c.n_intervals {
            return Err(mismatch(
                "n_intervals",
                format!("{:?}", self.n_intervals),
                format!("{:?}", c.n_intervals),
            ));
        }
        if self.gamma.to_bits() != c.gamma.to_bits() {
            return Err(mismatch("gamma", self.gamma.to_string(), c.gamma.to_string()));
        }
        if self.scheme != c.scheme {
            return Err(mismatch(
                "scheme",
                format!("{:?}", self.scheme),
                format!("{:?}", c.scheme),
            ));
        }
        let name = self.detector.name();
        if name != c.detector {
            return Err(mismatch("detector", name, c.detector.clone()));
        }
        // Version-2 checkpoints have no sketch tail: they are exact by
        // construction.
        let ckpt_kind = ckpt.sketch.as_ref().map_or("exact", |(kind, _)| kind.as_str());
        if self.state.kind() != ckpt_kind {
            return Err(mismatch(
                "state backend",
                self.state.kind().to_string(),
                ckpt_kind.to_string(),
            ));
        }
        let table = self.table.expect("PipelineBuilder needs a table (.table, .frozen or .live)");
        let update_ns = update_schedule(&table, &self.updates);
        // A live table must be replayed to the checkpoint's generation
        // before resuming (apply the first `generation` batches of the
        // same schedule); a frozen table is forever at generation 0, so
        // a checkpoint born live refuses to graft onto it — and vice
        // versa.
        if table.generation() != c.generation {
            return Err(mismatch(
                "table generation",
                table.generation().to_string(),
                c.generation.to_string(),
            ));
        }
        let next_update = usize::try_from(c.generation).map_err(|_| {
            CheckpointError::Mismatch(format!("table generation: {} exceeds usize", c.generation))
        })?;
        if matches!(table, TableHandle::Live { .. }) && next_update > update_ns.len() {
            return Err(CheckpointError::Mismatch(format!(
                "table generation: checkpoint consumed {} update batches but the schedule \
                 holds {}",
                c.generation,
                update_ns.len()
            )));
        }
        let n_routes = table.id_space();
        if n_routes as u64 != c.n_routes {
            return Err(mismatch(
                "routing table size",
                n_routes.to_string(),
                c.n_routes.to_string(),
            ));
        }
        // Every checkpointed key must still resolve to the same prefix
        // in this table — otherwise key ids would silently change
        // meaning mid-run.
        for (id, &(route, prefix)) in ckpt.keys.iter().enumerate() {
            if route as usize >= n_routes {
                return Err(CheckpointError::State(format!(
                    "key {id}: route {route} outside the table"
                )));
            }
            let actual = table.prefix(route);
            if actual != prefix {
                return Err(mismatch(
                    &format!("key {id} prefix"),
                    actual.to_string(),
                    prefix.to_string(),
                ));
            }
        }
        let key_alloc = KeyAllocator::from_key_routes(
            n_routes,
            &ckpt.keys.iter().map(|&(route, _)| route).collect::<Vec<_>>(),
        )
        .map_err(CheckpointError::State)?;
        let open = ckpt.open as usize;
        if let Some(n) = self.n_intervals {
            if open > n {
                return Err(CheckpointError::State(format!(
                    "checkpoint sealed {open} intervals but the run is bounded to {n}"
                )));
            }
        }
        let secs = self.interval_secs as f64;
        // Exact checkpoints are shard-count-independent: the serial
        // state either restores directly or partitions onto fresh
        // workers. Sketch checkpoints restore onto the one backend kind
        // (and geometry) they were exported from.
        let engine = match self.state.build() {
            Some(mut backend) => {
                assert_eq!(
                    self.shards, 0,
                    "sketch state backends run serially (--state {} is incompatible with shards)",
                    self.state.kind()
                );
                let (_, payload) = ckpt.sketch.as_ref().expect("kind check passed for a sketch");
                backend.restore_sketch(payload).map_err(CheckpointError::State)?;
                let classifier = OnlineClassifier::from_state(
                    self.detector,
                    self.gamma,
                    self.scheme,
                    ckpt.state.clone(),
                )
                .map_err(CheckpointError::State)?;
                Engine::Sketch {
                    classifier,
                    backend,
                    snapshot: Vec::new(),
                }
            }
            None if self.shards == 0 => {
                // Rebuild (and validate) the open interval's dense byte
                // row.
                let state = ExactDense::from_checkpoint_row(ckpt.keys.len(), &ckpt.row)
                    .map_err(CheckpointError::State)?;
                let classifier = OnlineClassifier::from_state(
                    self.detector,
                    self.gamma,
                    self.scheme,
                    ckpt.state.clone(),
                )
                .map_err(CheckpointError::State)?;
                Engine::Serial {
                    classifier,
                    state,
                    snapshot: Vec::new(),
                }
            }
            None => ShardEngine::resume(
                self.detector,
                self.gamma,
                self.scheme,
                self.shards,
                secs,
                &ckpt.state,
                &ckpt.row,
            )
            .map(Engine::Sharded)
            .map_err(CheckpointError::State)?,
        };
        let (start_ns, interval_ns) =
            eleph_flow::window_bounds_ns(self.interval_secs, self.start_unix);
        Ok(Pipeline {
            table,
            updates: self.updates,
            update_ns,
            next_update,
            interval_secs: self.interval_secs,
            secs,
            start_unix: self.start_unix,
            start_ns,
            interval_ns,
            n_intervals: self.n_intervals,
            engine,
            sinks: self.sinks,
            key_alloc,
            route_scratch: Vec::new(),
            far_future_streak: ckpt.far_future_streak,
            keys: ckpt.keys.iter().map(|&(_, prefix)| prefix).collect(),
            open,
            stats: ckpt.stats,
            crash: self.crash,
        })
    }

    /// [`PipelineBuilder::resume`] from a serialized checkpoint stream.
    pub fn resume_from<R: std::io::Read>(
        self,
        input: &mut R,
    ) -> std::result::Result<Pipeline<'t, D>, CheckpointError> {
        let ckpt = Checkpoint::read_from(input)?;
        self.resume(&ckpt)
    }
}

/// Validate a route-update schedule against the chosen table and
/// convert batch times to nanoseconds.
///
/// # Panics
/// When a schedule is given for a frozen table, a batch time overflows
/// `u64` nanoseconds, or the schedule is out of time order.
fn update_schedule(table: &TableHandle<'_>, updates: &[UpdateBatch]) -> Vec<u64> {
    assert!(
        updates.is_empty() || matches!(table, TableHandle::Live { .. }),
        "route updates need a live table (use .live(..), not .table/.frozen)"
    );
    let ns: Vec<u64> = updates
        .iter()
        .map(|b| {
            b.at_unix
                .checked_mul(1_000_000_000)
                .expect("route-update batch time overflows u64 nanoseconds")
        })
        .collect();
    assert!(
        ns.windows(2).all(|w| w[0] <= w[1]),
        "route-update schedule must be in non-decreasing time order"
    );
    ns
}

/// The classification engine behind a [`Pipeline`]: the open byte row
/// plus the online classifier, either inline on the pipeline thread
/// (serial — the default) or partitioned over shard workers. Both
/// variants expose the identical bin/seal/frontier surface and produce
/// bit-identical output; the pipeline's window logic, sealing cadence,
/// sinks and crash points never branch on the variant.
enum Engine<D: ThresholdDetector> {
    Serial {
        classifier: OnlineClassifier<D>,
        /// The exact open-interval byte row (the concrete type, not a
        /// trait object: the default path stays statically dispatched
        /// and byte-identical to every earlier release).
        state: ExactDense,
        /// Seal-path scratch: the sparse snapshot handed to the
        /// classifier.
        snapshot: Vec<(KeyId, f32)>,
    },
    /// A sublinear-memory sketch accumulates the open interval; the
    /// classifier still observes a sealed snapshot exactly as in the
    /// serial engine — detection never knows the row was approximate.
    Sketch {
        classifier: OnlineClassifier<D>,
        backend: Box<dyn StateBackend>,
        snapshot: Vec<(KeyId, f32)>,
    },
    Sharded(ShardEngine<D>),
}

impl<D: ThresholdDetector> Engine<D> {
    fn serial(classifier: OnlineClassifier<D>) -> Self {
        Engine::Serial {
            classifier,
            state: ExactDense::new(),
            snapshot: Vec::new(),
        }
    }

    /// Bin attributed bytes into the open interval.
    #[inline]
    fn bin(&mut self, key: KeyId, bytes: u64) {
        match self {
            Engine::Serial { state, .. } => state.record(key, bytes),
            Engine::Sketch { backend, .. } => backend.record(key, bytes),
            Engine::Sharded(engine) => engine.bin(key, bytes),
        }
    }

    /// Seal the open interval: build its sparse snapshot (ascending by
    /// key id, rates converted with the exact arithmetic of the batch
    /// matrix) and classify it.
    fn seal_interval(&mut self, secs: f64) -> IntervalOutcome {
        match self {
            Engine::Serial {
                classifier,
                state,
                snapshot,
            } => {
                state.seal_into(secs, snapshot);
                classifier.observe(snapshot)
            }
            Engine::Sketch {
                classifier,
                backend,
                snapshot,
            } => {
                backend.seal_into(secs, snapshot);
                classifier.observe(snapshot)
            }
            Engine::Sharded(engine) => engine.seal_interval(),
        }
    }

    /// Whether the open interval holds any attributed traffic.
    fn has_open_traffic(&self) -> bool {
        match self {
            Engine::Serial { state, .. } => state.has_traffic(),
            Engine::Sketch { backend, .. } => backend.has_traffic(),
            Engine::Sharded(engine) => engine.has_open_traffic(),
        }
    }

    /// The recovery frontier: the open row as sorted `(key, bytes)`
    /// pairs plus the (serial-form) classifier state. Sketch engines
    /// have no exact row (their open state travels as the checkpoint's
    /// sketch payload instead — see [`Engine::sketch_payload`]).
    fn frontier(&self) -> (Vec<(KeyId, u64)>, ClassifierState) {
        match self {
            Engine::Serial { classifier, state, .. } => {
                (state.open_row(), classifier.export_state())
            }
            Engine::Sketch { classifier, .. } => (Vec::new(), classifier.export_state()),
            Engine::Sharded(engine) => engine.frontier(),
        }
    }

    /// The checkpoint's version-3 tail: `(backend kind, serialized
    /// sketch state)`; `None` on the exact paths (their images stay
    /// format version 2).
    fn sketch_payload(&self) -> Option<(String, Vec<u8>)> {
        match self {
            Engine::Sketch { backend, .. } => backend
                .export_sketch()
                .map(|payload| (backend.kind().to_string(), payload)),
            _ => None,
        }
    }

    /// Resident footprint of the open-interval state in bytes.
    /// `n_keys` sizes the sharded engine's aggregate (its workers hold
    /// one dense row slot per key between them).
    fn state_bytes(&self, n_keys: usize) -> usize {
        match self {
            Engine::Serial { state, .. } => state.state_bytes(),
            Engine::Sketch { backend, .. } => backend.state_bytes(),
            Engine::Sharded(_) => n_keys * std::mem::size_of::<u64>(),
        }
    }

    /// Which state backend seals the intervals.
    fn state_kind(&self) -> &'static str {
        match self {
            Engine::Serial { .. } | Engine::Sharded(_) => "exact",
            Engine::Sketch { backend, .. } => backend.kind(),
        }
    }

    fn gamma(&self) -> f64 {
        match self {
            Engine::Serial { classifier, .. } | Engine::Sketch { classifier, .. } => {
                classifier.gamma()
            }
            Engine::Sharded(engine) => engine.gamma(),
        }
    }

    fn scheme(&self) -> Scheme {
        match self {
            Engine::Serial { classifier, .. } | Engine::Sketch { classifier, .. } => {
                classifier.scheme()
            }
            Engine::Sharded(engine) => engine.scheme(),
        }
    }

    fn detector_name(&self) -> String {
        match self {
            Engine::Serial { classifier, .. } | Engine::Sketch { classifier, .. } => {
                classifier.detector_name()
            }
            Engine::Sharded(engine) => engine.detector_name(),
        }
    }

    fn tracked_keys(&self) -> usize {
        match self {
            Engine::Serial { classifier, .. } | Engine::Sketch { classifier, .. } => {
                classifier.tracked_keys()
            }
            Engine::Sharded(engine) => engine.tracked_keys(),
        }
    }

    /// Number of shard workers (0 = serial).
    fn n_shards(&self) -> usize {
        match self {
            Engine::Serial { .. } | Engine::Sketch { .. } => 0,
            Engine::Sharded(engine) => engine.n_shards(),
        }
    }
}

/// The streaming pipeline: feed packets (or [`Pipeline::run`] a whole
/// [`PacketSource`]), get per-interval classifications at the sinks.
///
/// State is bounded by the classifier window plus O(distinct keys):
/// only the *open* interval's byte row exists at any time — no
/// full-matrix materialization, whatever the trace length.
pub struct Pipeline<'t, D: ThresholdDetector> {
    table: TableHandle<'t>,
    /// Timed route-update schedule (live tables only; empty otherwise).
    updates: Vec<UpdateBatch>,
    /// `updates[i].at_unix` in nanoseconds, precomputed once.
    update_ns: Vec<u64>,
    /// First schedule entry not yet applied to the table.
    next_update: usize,
    interval_secs: u64,
    /// `interval_secs as f64`, hoisted for the seal-path rate division.
    secs: f64,
    start_unix: u64,
    start_ns: u64,
    interval_ns: u64,
    n_intervals: Option<usize>,
    engine: Engine<D>,
    sinks: Vec<Box<dyn Sink>>,
    /// Shared first-seen key assignment (the same allocator the batch
    /// aggregator uses, so the two paths cannot drift on key order).
    key_alloc: KeyAllocator,
    /// Reusable buffer for [`attribute_metas`] results.
    route_scratch: Vec<Option<RouteId>>,
    /// Consecutive unbounded-mode packets beyond [`MAX_UNBOUNDED_GAP`]
    /// (see [`FAR_FUTURE_TOLERANCE`]).
    far_future_streak: u32,
    /// Prefix of each key, in global first-seen order.
    keys: Vec<Prefix>,
    /// Index of the open (not yet sealed) interval.
    open: usize,
    stats: PipelineStats,
    /// Armed process-fault injection (tests only; `None` in production).
    crash: Option<CrashSwitch>,
}

impl<D: ThresholdDetector> Pipeline<'_, D> {
    /// Observe a chunk of parsed packets (interval-ordered), batching
    /// attribution through the table exactly like the batch
    /// aggregator's hot path. Intervals are sealed — classified and
    /// emitted to the sinks — as packet timestamps cross boundaries,
    /// and scheduled route-update batches apply as timestamps cross
    /// their batch times.
    pub fn observe_chunk(&mut self, metas: &[PacketMeta]) -> Result<()> {
        // With a scheduled update due inside this chunk, split at the
        // first packet whose timestamp reaches the batch time: packets
        // before the cut attribute against the old generation, the
        // batch applies, packets after attribute against the new one.
        // Replay is thus a deterministic function of the offered stream
        // regardless of how the source happens to chunk it.
        let mut rest = metas;
        loop {
            let due = self.next_update_ns();
            if due == u64::MAX {
                break;
            }
            let Some(cut) = rest.iter().position(|m| m.ts_ns >= due) else {
                break;
            };
            self.observe_attributed(&rest[..cut])?;
            rest = &rest[cut..];
            self.apply_due_updates(rest[0].ts_ns);
        }
        self.observe_attributed(rest)
    }

    /// One attribution batch against the current table view (no update
    /// boundary inside): batched resolve through the helper shared with
    /// the batch aggregator (every chunk's lookups issue before any
    /// result is consumed); rejected packets simply never read theirs.
    fn observe_attributed(&mut self, metas: &[PacketMeta]) -> Result<()> {
        if metas.is_empty() {
            return Ok(());
        }
        let mut routes = std::mem::take(&mut self.route_scratch);
        self.table.attribute(metas, &mut routes);
        let result = metas
            .iter()
            .zip(routes.iter())
            .try_for_each(|(meta, &route)| self.apply(meta, route));
        self.route_scratch = routes;
        result
    }

    /// Observe one parsed packet (single-lookup path; rejected packets
    /// cost no table access).
    pub fn observe_meta(&mut self, meta: &PacketMeta) -> Result<()> {
        if meta.ts_ns >= self.next_update_ns() {
            self.apply_due_updates(meta.ts_ns);
        }
        self.stats.offered += 1;
        let Some(interval) = self.classify_window(meta.ts_ns)? else {
            return Ok(());
        };
        let route = self.table.attribute_one(u32::from(meta.dst));
        self.advance_and_bin(meta, route, interval)
    }

    /// Nanosecond time of the next scheduled update batch (`u64::MAX`
    /// when the schedule is exhausted).
    #[inline]
    fn next_update_ns(&self) -> u64 {
        self.update_ns.get(self.next_update).copied().unwrap_or(u64::MAX)
    }

    /// Apply every scheduled batch due at or before `ts_ns`, re-pinning
    /// the table view after each so subsequent attribution sees it.
    fn apply_due_updates(&mut self, ts_ns: u64) {
        while self.next_update < self.updates.len() && self.update_ns[self.next_update] <= ts_ns {
            if let TableHandle::Live { table, view } = &mut self.table {
                table.apply(&self.updates[self.next_update].updates);
                *view = table.view();
            }
            self.next_update += 1;
        }
    }

    /// Observe one raw packet: parse, then bin; parse failures are
    /// counted as malformed, never propagated as errors.
    pub fn observe_raw(&mut self, link: LinkType, data: &[u8], ts_ns: u64) -> Result<()> {
        match eleph_packet::parse_meta(link, data, ts_ns) {
            Ok(meta) => self.observe_meta(&meta),
            Err(_) => {
                self.stats.offered += 1;
                self.stats.malformed += 1;
                Ok(())
            }
        }
    }

    /// Drain a [`PacketSource`] to exhaustion, folding its malformed
    /// count into the pipeline's accounting as the stream advances (so
    /// the accounting stays truthful even when a sink or the source
    /// errors mid-run).
    pub fn run<S: PacketSource>(&mut self, mut source: S) -> Result<()> {
        self.run_inner(&mut source, None)
    }

    /// [`Pipeline::run`], writing a [`Checkpointer`]'s snapshot at every
    /// source chunk boundary where its cadence says one is due. Only
    /// chunk boundaries qualify — that is what lets
    /// [`crate::skip_offered`] replay a fresh source to *exactly* the
    /// checkpoint's consumption count on resume.
    pub fn run_checkpointed<S: PacketSource>(
        &mut self,
        mut source: S,
        checkpointer: &mut Checkpointer,
    ) -> Result<()> {
        self.run_inner(&mut source, Some(checkpointer))
    }

    fn run_inner<S: PacketSource>(
        &mut self,
        source: &mut S,
        mut checkpointer: Option<&mut Checkpointer>,
    ) -> Result<()> {
        let mut buf: Vec<PacketMeta> = Vec::with_capacity(RUN_BUFFER);
        // A resumed source has already produced malformed records for
        // the skipped (already-checkpointed) span; fold only the deltas
        // from here on or they would be double-counted.
        let mut folded: u64 = source.malformed();
        loop {
            buf.clear();
            let pulled = source.next_chunk(&mut buf);
            let malformed = source.malformed();
            self.stats.offered += malformed - folded;
            self.stats.malformed += malformed - folded;
            folded = malformed;
            match pulled {
                Err(e) => return Err(e.into()),
                Ok(0) => return Ok(()),
                Ok(_) => self.observe_chunk(&buf)?,
            }
            if let Some(ckpt) = checkpointer.as_deref_mut() {
                ckpt.maybe_write(self)?;
            }
        }
    }

    /// The attribution + sealing tail of the batched path. Check order
    /// (window before routability) matches the batch aggregator, so a
    /// doubly-bad packet lands in the same reject bucket.
    #[inline]
    fn apply(&mut self, meta: &PacketMeta, route: Option<RouteId>) -> Result<()> {
        self.stats.offered += 1;
        let Some(interval) = self.classify_window(meta.ts_ns)? else {
            return Ok(());
        };
        self.advance_and_bin(meta, route, interval)
    }

    /// Window-check a timestamp: `Ok(Some(n))` for an acceptable
    /// interval, `Ok(None)` after counting the reject. (`late` covers
    /// in-window packets whose interval was already sealed.)
    #[inline]
    fn classify_window(&mut self, ts_ns: u64) -> Result<Option<usize>> {
        if ts_ns < self.start_ns {
            // A before-window packet is still in-horizon evidence the
            // stream's clock is sane: it must reset the far-future
            // streak, or interleaved early/corrupt records could trip
            // [`FAR_FUTURE_TOLERANCE`] without ever being consecutive.
            self.far_future_streak = 0;
            self.stats.out_of_window += 1;
            return Ok(None);
        }
        let interval = (ts_ns - self.start_ns) / self.interval_ns;
        match self.n_intervals {
            Some(n) => {
                if interval >= n as u64 {
                    self.stats.out_of_window += 1;
                    return Ok(None);
                }
            }
            None => {
                // See [`MAX_UNBOUNDED_GAP`]; the usize bound guards the
                // cast on 32-bit targets. An isolated corrupt timestamp
                // is skipped (out-of-window) and forgotten, but a
                // persistent streak means the stream genuinely moved
                // past the horizon: fail loudly instead of silently
                // discarding all further traffic.
                if interval.saturating_sub(self.open as u64) > MAX_UNBOUNDED_GAP
                    || interval > usize::MAX as u64
                {
                    self.stats.out_of_window += 1;
                    self.far_future_streak += 1;
                    if self.far_future_streak >= FAR_FUTURE_TOLERANCE {
                        return Err(PipelineError::GapExceeded {
                            open: self.open,
                            interval,
                        });
                    }
                    return Ok(None);
                }
                self.far_future_streak = 0;
            }
        }
        let interval = interval as usize;
        if interval < self.open {
            self.stats.late += 1;
            return Ok(None);
        }
        Ok(Some(interval))
    }

    /// Seal any intervals the packet skipped past, then bin it.
    #[inline]
    fn advance_and_bin(
        &mut self,
        meta: &PacketMeta,
        route: Option<RouteId>,
        interval: usize,
    ) -> Result<()> {
        while self.open < interval {
            self.seal()?;
        }
        let Some(route) = route else {
            self.stats.unroutable += 1;
            return Ok(());
        };
        let (key, newly_assigned) = self.key_alloc.key_for(route);
        if newly_assigned {
            debug_assert_eq!(key as usize, self.keys.len());
            self.keys.push(self.table.prefix(route));
        }
        let bytes = u64::from(meta.wire_len);
        self.engine.bin(key, bytes);
        self.stats.attributed += 1;
        self.stats.attributed_bytes += bytes;
        Ok(())
    }

    /// Seal the open interval: classify its snapshot (see
    /// [`Engine::seal_interval`]), fan out to the sinks, advance.
    fn seal(&mut self) -> Result<()> {
        let seal_index = self.open;
        let outcome = self.engine.seal_interval(self.secs);
        if self.crash_now(CrashPoint::AfterSeal, seal_index) {
            // The classifier advanced in memory only; nothing durable
            // recorded this interval. A resume replays it entirely.
            return Err(PipelineError::Crash(CrashPoint::AfterSeal));
        }
        let sealed = SealedInterval {
            outcome: &outcome,
            interval_start_unix: self.start_unix + self.open as u64 * self.interval_secs,
            interval_secs: self.interval_secs,
            keys: &self.keys,
        };
        for sink in &mut self.sinks {
            sink.on_interval(&sealed)?;
        }
        self.open += 1;
        if self.crash_now(CrashPoint::AfterSink, seal_index) {
            // The sinks hold one more interval than the last checkpoint
            // records; resume must truncate the duplicate.
            return Err(PipelineError::Crash(CrashPoint::AfterSink));
        }
        Ok(())
    }

    /// Poll the armed crash switch (no-op without one).
    pub(crate) fn crash_now(&mut self, point: CrashPoint, seal_index: usize) -> bool {
        self.crash
            .as_mut()
            .is_some_and(|switch| switch.should_crash(point, seal_index))
    }

    /// Serialize the full recovery frontier (see [`Checkpoint`] and the
    /// `checkpoint` module docs for format and semantics). Call at a
    /// source chunk boundary — [`Pipeline::run_checkpointed`] does this
    /// automatically.
    pub fn checkpoint<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        self.export_checkpoint().write_to(out)
    }

    /// The decoded form of [`Pipeline::checkpoint`].
    pub(crate) fn export_checkpoint(&self) -> Checkpoint {
        let key_routes = self.key_alloc.key_routes();
        debug_assert_eq!(key_routes.len(), self.keys.len());
        // Sharded engines merge their workers' rows and states back
        // into the serial form here, so the checkpoint layout (and its
        // format v2 fingerprint) is independent of the shard count.
        let (row, state) = self.engine.frontier();
        Checkpoint {
            config: CheckpointConfig {
                interval_secs: self.interval_secs,
                start_unix: self.start_unix,
                n_intervals: self.n_intervals.map(|n| n as u64),
                gamma: self.engine.gamma(),
                scheme: self.engine.scheme(),
                detector: self.engine.detector_name(),
                n_routes: self.table.id_space() as u64,
                generation: self.table.generation(),
            },
            open: self.open as u64,
            far_future_streak: self.far_future_streak,
            stats: self.stats,
            keys: key_routes
                .iter()
                .zip(&self.keys)
                .map(|(&route, &prefix)| (route, prefix))
                .collect(),
            row,
            state,
            sketch: self.engine.sketch_payload(),
        }
    }

    /// Seal the remaining window and flush the sinks.
    ///
    /// Bounded pipelines seal every configured interval (trailing
    /// silence classifies as empty intervals, exactly like the batch
    /// matrix); unbounded pipelines seal through the last interval that
    /// attributed traffic.
    pub fn finish(mut self) -> Result<PipelineReport> {
        match self.n_intervals {
            Some(n) => {
                while self.open < n {
                    self.seal()?;
                }
            }
            None => {
                if self.engine.has_open_traffic() {
                    self.seal()?;
                }
            }
        }
        for sink in &mut self.sinks {
            sink.finish()?;
        }
        Ok(PipelineReport {
            stats: self.stats,
            intervals: self.open,
            far_future_streak: self.far_future_streak,
            generation: self.table.generation(),
            route_updates_applied: self.next_update as u64,
            distinct_keys: self.keys.len(),
            state_bytes: self.engine.state_bytes(self.keys.len()),
            state_backend: self.engine.state_kind(),
            keys: self.keys,
        })
    }

    /// Current packet accounting.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Consecutive far-future rejects right now (unbounded mode trips
    /// [`PipelineError::GapExceeded`] when this reaches the tolerance) —
    /// a nonzero value at end of run means the capture tail was
    /// suspicious.
    pub fn far_future_streak(&self) -> u32 {
        self.far_future_streak
    }

    /// Intervals sealed so far.
    pub fn intervals_sealed(&self) -> usize {
        self.open
    }

    /// The key table so far (global first-seen order).
    pub fn keys(&self) -> &[Prefix] {
        &self.keys
    }

    /// Keys currently holding classifier window state.
    pub fn tracked_keys(&self) -> usize {
        self.engine.tracked_keys()
    }

    /// Number of shard workers the online path runs on (0 = serial,
    /// everything inline on the pipeline thread).
    pub fn n_shards(&self) -> usize {
        self.engine.n_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Collector;
    use crate::source::MetaSource;
    use eleph_bgp::{Origin, PeerClass, RouteEntry, RouteUpdate};
    use eleph_core::classify;
    use eleph_flow::Aggregator;
    use eleph_packet::IpProtocol;
    use std::net::Ipv4Addr;

    fn table() -> BgpTable {
        BgpTable::from_entries(vec![
            RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 1),
                as_path: vec![1],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier1,
            },
            RouteEntry {
                prefix: "10.1.0.0/16".parse().unwrap(),
                next_hop: Ipv4Addr::new(192, 0, 2, 2),
                as_path: vec![2],
                origin: Origin::Igp,
                peer_class: PeerClass::Tier2,
            },
        ])
    }

    fn meta(dst: [u8; 4], ts_s: u64, len: u32) -> PacketMeta {
        PacketMeta {
            ts_ns: ts_s * 1_000_000_000,
            src: Ipv4Addr::new(198, 18, 0, 1),
            dst: Ipv4Addr::from(dst),
            proto: IpProtocol::Tcp,
            src_port: 1,
            dst_port: 2,
            wire_len: len,
        }
    }

    /// Mixed stream across 3 intervals: both prefixes, an unroutable
    /// destination, out-of-window timestamps, and an empty interval 1.
    fn stream() -> Vec<PacketMeta> {
        let mut v = vec![
            meta([10, 1, 0, 1], 1000, 900), // /16 first: key order test
            meta([10, 2, 0, 1], 1001, 700),
            meta([11, 0, 0, 1], 1002, 500), // unroutable
            meta([10, 2, 0, 2], 1009, 100),
            // interval 1 (1010..1020): silence
            meta([10, 2, 0, 1], 1021, 400),
            meta([10, 1, 0, 9], 1029, 300),
        ];
        v.insert(0, meta([10, 0, 0, 1], 900, 50)); // before window
        v.push(meta([10, 0, 0, 1], 1031, 60)); // past window
        v
    }

    fn batch_reference(
        metas: &[PacketMeta],
        scheme: Scheme,
    ) -> (eleph_flow::BandwidthMatrix, eleph_core::ClassificationResult) {
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 3);
        for m in metas {
            agg.observe(m);
        }
        let (matrix, _) = agg.finish();
        let result = classify(&matrix, ConstantLoadDetector::new(0.8), 0.9, scheme);
        (matrix, result)
    }

    fn run_pipeline(metas: Vec<PacketMeta>, scheme: Scheme) -> (Vec<crate::CollectedInterval>, PipelineReport) {
        run_pipeline_sharded(metas, scheme, 0)
    }

    fn run_pipeline_sharded(
        metas: Vec<PacketMeta>,
        scheme: Scheme,
        shards: usize,
    ) -> (Vec<crate::CollectedInterval>, PipelineReport) {
        let t = table();
        let collector = Collector::new();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(3)
            .detector(ConstantLoadDetector::new(0.8))
            .gamma(0.9)
            .scheme(scheme)
            .shards(shards)
            .sink(collector.sink())
            .build();
        p.run(MetaSource::new(metas)).expect("run");
        let report = p.finish().expect("finish");
        (collector.take(), report)
    }

    #[test]
    fn matches_batch_on_mixed_stream() {
        for scheme in [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window: 2 },
            Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        ] {
            let metas = stream();
            let (matrix, batch) = batch_reference(&metas, scheme);
            let (outcomes, report) = run_pipeline(metas, scheme);
            assert_eq!(outcomes.len(), 3);
            assert_eq!(report.intervals, 3);
            // Key table identical to the batch matrix's.
            assert_eq!(report.keys.len(), matrix.n_keys());
            for (id, &key) in report.keys.iter().enumerate() {
                assert_eq!(key, matrix.key(id as KeyId), "{scheme:?} key {id}");
            }
            for (n, got) in outcomes.iter().enumerate() {
                let o = &got.outcome;
                assert_eq!(o.interval, n);
                assert_eq!(o.elephants, batch.elephants[n], "{scheme:?} interval {n}");
                assert_eq!(
                    o.threshold.to_bits(),
                    batch.thresholds[n].to_bits(),
                    "{scheme:?} interval {n} threshold"
                );
                assert_eq!(o.elephant_load.to_bits(), batch.elephant_load[n].to_bits());
                assert_eq!(o.total_load.to_bits(), batch.total_load[n].to_bits());
                assert_eq!(got.interval_start_unix, 1000 + n as u64 * 10);
            }
        }
    }

    #[test]
    fn sharded_matches_serial_bit_for_bit() {
        for scheme in [
            Scheme::SingleFeature,
            Scheme::LatentHeat { window: 2 },
            Scheme::Hysteresis { enter: 1.2, exit: 0.6 },
        ] {
            let (serial, serial_report) = run_pipeline(stream(), scheme);
            for shards in [1, 2, 4, 7] {
                let (sharded, report) = run_pipeline_sharded(stream(), scheme, shards);
                assert_eq!(sharded.len(), serial.len(), "{scheme:?} shards={shards}");
                for (s, g) in serial.iter().zip(&sharded) {
                    let (a, b) = (&s.outcome, &g.outcome);
                    assert_eq!(a.interval, b.interval);
                    assert_eq!(a.elephants, b.elephants, "{scheme:?} shards={shards}");
                    assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                    assert_eq!(a.elephant_load.to_bits(), b.elephant_load.to_bits());
                    assert_eq!(a.total_load.to_bits(), b.total_load.to_bits());
                }
                assert_eq!(report.stats, serial_report.stats);
                assert_eq!(report.keys, serial_report.keys);
            }
        }
    }

    #[test]
    fn sharded_checkpoint_bytes_equal_serial_and_cross_resume() {
        // The same prefix of the stream, consumed serially and sharded,
        // must export byte-identical checkpoints (shard count is not
        // part of the recovery frontier) — and either checkpoint must
        // resume under either engine to the identical tail.
        let metas = stream();
        let scheme = Scheme::LatentHeat { window: 2 };
        let split = 4; // mid-stream, with the open interval non-empty
        let t = table();
        let build = |shards: usize| {
            PipelineBuilder::new()
                .table(&t)
                .interval_secs(10)
                .start_unix(1000)
                .n_intervals(3)
                .scheme(scheme)
                .shards(shards)
                .build()
        };
        let export = |shards: usize| {
            let mut p = build(shards);
            p.observe_chunk(&metas[..split]).unwrap();
            let mut bytes = Vec::new();
            p.checkpoint(&mut bytes).unwrap();
            bytes
        };
        let serial_ckpt = export(0);
        for shards in [1, 2, 4, 7] {
            assert_eq!(export(shards), serial_ckpt, "checkpoint bytes, shards={shards}");
        }
        // Reference: the serial run over the whole stream.
        let (reference, _) = run_pipeline(metas.clone(), scheme);
        let ckpt = Checkpoint::read_from(&mut serial_ckpt.as_slice()).unwrap();
        for shards in [0, 1, 2, 4, 7] {
            let collector = Collector::new();
            let mut p = PipelineBuilder::new()
                .table(&t)
                .interval_secs(10)
                .start_unix(1000)
                .n_intervals(3)
                .scheme(scheme)
                .shards(shards)
                .sink(collector.sink())
                .resume(&ckpt)
                .unwrap();
            p.observe_chunk(&metas[split..]).unwrap();
            let report = p.finish().unwrap();
            let resumed = collector.take();
            // The resumed run seals only the intervals after the split.
            assert_eq!(report.intervals, 3);
            assert_eq!(resumed.len(), 3, "shards={shards}");
            for (s, g) in reference.iter().zip(&resumed) {
                let (a, b) = (&s.outcome, &g.outcome);
                assert_eq!(a.elephants, b.elephants, "resume shards={shards}");
                assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                assert_eq!(a.elephant_load.to_bits(), b.elephant_load.to_bits());
                assert_eq!(a.total_load.to_bits(), b.total_load.to_bits());
            }
        }
    }

    #[test]
    fn stats_match_batch_aggregator() {
        let metas = stream();
        let t = table();
        let mut agg = Aggregator::new(&t, 10, 1000, 3);
        for m in &metas {
            agg.observe(m);
        }
        let batch = agg.stats();
        let (_, report) = run_pipeline(metas, Scheme::SingleFeature);
        let s = report.stats;
        assert!(s.is_conserved());
        assert_eq!(s.late, 0);
        assert_eq!(s.offered, batch.offered);
        assert_eq!(s.attributed, batch.attributed);
        assert_eq!(s.attributed_bytes, batch.attributed_bytes);
        assert_eq!(s.unroutable, batch.unroutable);
        assert_eq!(s.out_of_window, batch.out_of_window);
        assert_eq!(s.malformed, batch.malformed);
    }

    #[test]
    fn empty_interval_seals_empty_outcome() {
        let (outcomes, _) = run_pipeline(stream(), Scheme::LatentHeat { window: 2 });
        let gap = &outcomes[1].outcome;
        assert!(gap.elephants.is_empty(), "gap interval emitted elephants");
        assert_eq!(gap.total_load, 0.0);
        assert_eq!(gap.fraction(), 0.0);
        assert!(gap.fraction().is_finite());
    }

    #[test]
    fn late_packets_are_counted_not_binned() {
        let t = table();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(3)
            .build();
        p.observe_meta(&meta([10, 2, 0, 1], 1001, 100)).unwrap();
        p.observe_meta(&meta([10, 2, 0, 1], 1025, 100)).unwrap(); // seals 0, 1
        p.observe_meta(&meta([10, 2, 0, 1], 1005, 100)).unwrap(); // late
        let stats = p.stats();
        assert_eq!(stats.late, 1);
        assert_eq!(stats.attributed, 2);
        assert!(stats.is_conserved());
        assert_eq!(p.intervals_sealed(), 2);
    }

    #[test]
    fn unbounded_seals_through_last_traffic() {
        let t = table();
        let collector = Collector::new();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(0)
            .sink(collector.sink())
            .build();
        p.observe_meta(&meta([10, 2, 0, 1], 5, 100)).unwrap();
        p.observe_meta(&meta([10, 2, 0, 1], 75, 100)).unwrap(); // interval 7
        let report = p.finish().unwrap();
        assert_eq!(report.intervals, 8);
        assert_eq!(collector.len(), 8);
    }

    #[test]
    fn empty_run_bounded_seals_all_intervals() {
        let t = table();
        let collector = Collector::new();
        let p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(0)
            .n_intervals(4)
            .sink(collector.sink())
            .build();
        let report = p.finish().unwrap();
        assert_eq!(report.intervals, 4);
        assert_eq!(collector.len(), 4);
        for c in collector.take() {
            assert!(c.outcome.elephants.is_empty());
            assert_eq!(c.outcome.fraction(), 0.0);
        }
    }

    #[test]
    fn unbounded_caps_gap_from_corrupt_timestamp() {
        // Regression: one structurally-valid record with a far-future
        // timestamp must not force sealing millions of empty intervals
        // in unbounded mode — it is counted out-of-window instead, and
        // the stream continues normally afterwards.
        let t = table();
        let mut p = PipelineBuilder::new().table(&t).interval_secs(10).start_unix(0).build();
        p.observe_meta(&meta([10, 2, 0, 1], 5, 100)).unwrap();
        p.observe_meta(&meta([10, 2, 0, 1], u64::MAX / 1_000_000_000 - 1, 100)).unwrap();
        p.observe_meta(&meta([10, 2, 0, 1], 15, 100)).unwrap(); // still interval 1
        let stats = p.stats();
        assert_eq!(stats.out_of_window, 1);
        assert_eq!(stats.attributed, 2);
        assert!(stats.is_conserved());
        let report = p.finish().unwrap();
        assert_eq!(report.intervals, 2);
    }

    #[test]
    fn persistent_far_future_stream_errors_loudly() {
        // Regression: a stream that genuinely jumped past the unbounded
        // gap horizon must error after a bounded number of rejects, not
        // silently discard all further traffic as out-of-window.
        let t = table();
        let mut p = PipelineBuilder::new().table(&t).interval_secs(10).start_unix(0).build();
        p.observe_meta(&meta([10, 2, 0, 1], 5, 100)).unwrap();
        let far = u64::MAX / 1_000_000_000 - 1;
        let mut tripped = None;
        for i in 0..200 {
            if let Err(e) = p.observe_meta(&meta([10, 2, 0, 1], far, 100)) {
                tripped = Some((i, e));
                break;
            }
        }
        let (after, err) = tripped.expect("persistent far-future stream must error");
        assert!(after < 100, "error should trip within the tolerance streak");
        assert!(matches!(err, PipelineError::GapExceeded { .. }));
    }

    #[test]
    fn empty_run_unbounded_seals_nothing() {
        let t = table();
        let p = PipelineBuilder::new().table(&t).interval_secs(10).build();
        let report = p.finish().unwrap();
        assert_eq!(report.intervals, 0);
        assert!(report.keys.is_empty());
    }

    #[test]
    fn observe_raw_counts_malformed() {
        let t = table();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(0)
            .n_intervals(1)
            .build();
        p.observe_raw(LinkType::RawIp, &[0xFF; 6], 5_000_000_000).unwrap();
        let stats = p.stats();
        assert_eq!(stats.malformed, 1);
        assert!(stats.is_conserved());
    }

    /// A `Write` target the test can read back after the pipeline
    /// (which requires `'static` sinks) is finished.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn mid_stream_update_reattributes_within_one_chunk() {
        // A withdraw scheduled inside a chunk splits it: the packet
        // before the batch time attributes to the /16, the packets
        // after fall through to the covering /8 — and when the /16 is
        // re-announced, its traffic lands under a *fresh* key, never
        // rewriting the old one's history.
        let live = LiveBgpTable::from_table(&table());
        let sixteen: Prefix = "10.1.0.0/16".parse().unwrap();
        let mut p = PipelineBuilder::new()
            .live(&live)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(4)
            .route_updates(vec![
                UpdateBatch {
                    at_unix: 1005,
                    updates: vec![RouteUpdate::Withdraw(sixteen)],
                },
                UpdateBatch {
                    at_unix: 1020,
                    updates: vec![RouteUpdate::Announce(RouteEntry {
                        prefix: sixteen,
                        next_hop: Ipv4Addr::new(192, 0, 2, 9),
                        as_path: vec![3],
                        origin: Origin::Igp,
                        peer_class: PeerClass::Tier2,
                    })],
                },
            ])
            .build();
        p.observe_chunk(&[
            meta([10, 1, 0, 1], 1001, 100), // /16, old generation
            meta([10, 1, 0, 1], 1006, 200), // withdrawn → covering /8
            meta([10, 1, 0, 1], 1021, 300), // re-announced /16, fresh key
        ])
        .unwrap();
        let report = p.finish().unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.route_updates_applied, 2);
        // Same prefix appears twice under distinct keys (old id retired).
        assert_eq!(report.keys, vec![sixteen, "10.0.0.0/8".parse().unwrap(), sixteen]);
        assert_eq!(report.stats.attributed, 3);
        assert!(report.stats.is_conserved());
    }

    #[test]
    fn frozen_pipeline_reports_generation_zero() {
        let t = table();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(1)
            .build();
        p.observe_meta(&meta([10, 1, 0, 1], 1001, 100)).unwrap();
        let report = p.finish().unwrap();
        assert_eq!(report.generation, 0);
        assert_eq!(report.route_updates_applied, 0);
    }

    #[test]
    #[should_panic(expected = "route updates need a live table")]
    fn route_updates_without_live_table_panic_at_build() {
        let t = table();
        let _ = PipelineBuilder::new()
            .table(&t)
            .route_updates(vec![UpdateBatch { at_unix: 0, updates: vec![] }])
            .build();
    }

    #[test]
    fn multi_sink_fan_out_delivers_to_all() {
        let t = table();
        let a = Collector::new();
        let b = Collector::new();
        let jsonl = SharedBuf::default();
        let mut p = PipelineBuilder::new()
            .table(&t)
            .interval_secs(10)
            .start_unix(1000)
            .n_intervals(2)
            .sink(a.sink())
            .sink(crate::JsonlSink::new(jsonl.clone()))
            .sink(b.sink())
            .build();
        p.observe_meta(&meta([10, 2, 0, 1], 1001, 100)).unwrap();
        p.finish().unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        let text = String::from_utf8(jsonl.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("\"interval\":0"));
    }
}
