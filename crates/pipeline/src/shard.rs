//! The sharded online engine: N worker threads, each owning the byte
//! row and classifier partition for its slice of the key space.
//!
//! # Architecture
//!
//! The attribution thread (the pipeline itself) stays the single writer
//! of key *assignment* — first-seen key ids are a property of the packet
//! stream and must not depend on worker scheduling. Attributed
//! `(key, bytes)` pairs accumulate in a pending buffer and are
//! broadcast to every worker in batches ([`SHARD_BATCH`]); each worker
//! filters the batch down to the keys its [`ShardSpec`] owns and bins
//! them into its local dense row. Broadcasting costs one `Arc` clone
//! per worker per batch — no per-packet routing, no per-packet
//! synchronization.
//!
//! # The two-phase seal barrier
//!
//! Detection is global (a threshold is a function of *all* keys), so a
//! seal round-trips the workers twice over their FIFO job channels:
//!
//! 1. **Seal**: each worker converts its local row into its slice of
//!    the interval snapshot (ascending by key, batch-identical rate
//!    arithmetic) and sends it to the pipeline thread, which N-way
//!    merges the slices into the global ascending value vector and runs
//!    the detector + EWMA once ([`SealCoordinator`]).
//! 2. **Classify**: the resulting [`SealContext`] goes back to every
//!    worker together with its own snapshot slice (ping-ponged, so the
//!    allocation is consumed into the window history with no copy);
//!    each worker updates its latent-heat/hysteresis partition and
//!    returns its elephants, which merge in ascending key order into
//!    the exact serial emission ([`merge_observations`]).
//!
//! Because each worker's channel is FIFO, the Seal job is itself the
//! barrier: every Items batch sent before it is binned before the row
//! is sealed. Empty intervals run the same two phases — parts must
//! stay in lockstep with the serial window (one history slot per
//! interval, see `eleph_core::shard`).
//!
//! # Checkpoints
//!
//! A Frontier round-trip collects every worker's open row and
//! [`PartState`]; rows merge with the pending (not yet broadcast)
//! items overlaid, and [`merge_states`] reassembles — with structural
//! cross-validation — the exact serial `ClassifierState`. Checkpoints
//! are therefore shard-count-independent: format v2 fingerprints
//! validate unchanged, and any shard count (including serial) resumes
//! from any other's snapshot.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use eleph_core::{
    merge_observations, merge_states, partition_state, ClassifierPart, ClassifierState,
    IntervalOutcome, PartObservation, PartState, Scheme, SealContext, SealCoordinator,
    ThresholdDetector,
};
use eleph_flow::{KeyId, ShardSpec};

/// Attributed `(key, bytes)` pairs buffered on the pipeline thread
/// before a broadcast to the workers. Large enough to amortize the
/// channel send, small enough to keep batches cache-resident.
pub(crate) const SHARD_BATCH: usize = 1024;

/// Work sent to a shard worker (FIFO per worker; the Seal job doubles
/// as the barrier behind all earlier Items).
enum Job {
    /// A broadcast batch of attributed pairs; the worker bins only the
    /// keys it owns.
    Items(Arc<Vec<(KeyId, u64)>>),
    /// Phase 1: seal the local row into a snapshot slice and return it.
    Seal,
    /// Phase 2: the global context plus the worker's own snapshot slice
    /// (returned from phase 1), to be consumed into the window history.
    Classify(SealContext, Vec<(KeyId, f32)>),
    /// Export the open row and classifier partition (checkpointing).
    Frontier,
}

/// A worker's answer, tagged with its shard index.
enum Resp {
    /// Phase-1 result: the shard's snapshot slice, ascending by key.
    Snapshot(usize, Vec<(KeyId, f32)>),
    /// Phase-2 result: the shard's elephants + load terms.
    Observation(usize, PartObservation),
    /// Frontier export: open-row pairs (ascending) and the partition
    /// state.
    Frontier(usize, Vec<(KeyId, u64)>, Box<PartState>),
}

/// One worker's whole state: its key slice's open-interval row plus
/// classifier partition.
struct Worker {
    spec: ShardSpec,
    part: ClassifierPart,
    /// `interval_secs as f64` — the seal-path rate division must use
    /// the identical expression as the serial engine.
    secs: f64,
    /// Open interval's bytes, dense over *local* key indices.
    row: Vec<u64>,
    /// Local indices with nonzero bytes (unsorted until sealing).
    touched: Vec<u32>,
}

impl Worker {
    fn run(mut self, jobs: Receiver<Job>, resp: Sender<Resp>) {
        let shard = self.spec.shard();
        while let Ok(job) = jobs.recv() {
            let ok = match job {
                Job::Items(items) => {
                    for &(key, bytes) in items.iter() {
                        if self.spec.owns(key) {
                            self.bin(key, bytes);
                        }
                    }
                    true
                }
                Job::Seal => {
                    // Same scan as the serial seal, over the local row:
                    // ascending local index is ascending global key.
                    self.touched.sort_unstable();
                    let mut snapshot = Vec::with_capacity(self.touched.len());
                    for &local in &self.touched {
                        let k = local as usize;
                        let bytes = self.row[k];
                        self.row[k] = 0;
                        debug_assert!(bytes > 0, "touched key with zero bytes");
                        // Identical expression to the batch matrix / serial
                        // seal, so the f32 rate is bit-identical.
                        snapshot
                            .push((self.spec.global(k), (bytes as f64 * 8.0 / self.secs) as f32));
                    }
                    self.touched.clear();
                    resp.send(Resp::Snapshot(shard, snapshot)).is_ok()
                }
                Job::Classify(ctx, snapshot) => {
                    let obs = self.part.observe_part(snapshot, &ctx);
                    resp.send(Resp::Observation(shard, obs)).is_ok()
                }
                Job::Frontier => {
                    let mut row: Vec<(KeyId, u64)> = self
                        .touched
                        .iter()
                        .map(|&local| (self.spec.global(local as usize), self.row[local as usize]))
                        .collect();
                    row.sort_unstable();
                    let state = Box::new(self.part.export_state());
                    resp.send(Resp::Frontier(shard, row, state)).is_ok()
                }
            };
            if !ok {
                // The pipeline went away mid-response; nothing to do.
                return;
            }
        }
    }

    #[inline]
    fn bin(&mut self, key: KeyId, bytes: u64) {
        let k = self.spec.local(key);
        if k >= self.row.len() {
            self.row.resize(k + 1, 0);
        }
        if self.row[k] == 0 && bytes > 0 {
            self.touched.push(k as u32);
        }
        self.row[k] += bytes;
    }
}

/// The sharded counterpart of the serial row + classifier: N long-lived
/// worker threads plus the global [`SealCoordinator`] on the pipeline
/// thread. Output is bit-identical to the serial engine for every
/// shard count (see the module docs for why).
pub(crate) struct ShardEngine<D> {
    coord: SealCoordinator<D>,
    scheme: Scheme,
    /// Attributed pairs not yet broadcast (flushed at [`SHARD_BATCH`],
    /// before every seal, and overlaid onto frontier exports).
    pending: Vec<(KeyId, u64)>,
    /// Whether the open interval has binned any nonzero bytes — the
    /// sharded stand-in for the serial engine's `!touched.is_empty()`.
    dirty: bool,
    job_txs: Vec<Sender<Job>>,
    resp_rx: Receiver<Resp>,
    handles: Vec<JoinHandle<()>>,
}

impl<D: ThresholdDetector> ShardEngine<D> {
    /// Spawn `n_shards` fresh workers (`n_shards ≥ 1`).
    pub(crate) fn new(detector: D, gamma: f64, scheme: Scheme, n_shards: usize, secs: f64) -> Self {
        let parts = (0..n_shards)
            .map(|s| ClassifierPart::new(ShardSpec::new(s, n_shards), scheme))
            .collect();
        Self::spawn(
            SealCoordinator::new(detector, gamma),
            scheme,
            parts,
            vec![Vec::new(); n_shards],
            secs,
        )
    }

    /// Rebuild a sharded engine from a checkpointed serial state: the
    /// classifier state is validated, partitioned onto `n_shards`
    /// fresh parts (each part re-validating its slice plus ownership),
    /// and the open row (ascending, nonzero — the caller has already
    /// rebuilt and validated it) is split the same way.
    pub(crate) fn resume(
        detector: D,
        gamma: f64,
        scheme: Scheme,
        n_shards: usize,
        secs: f64,
        state: &ClassifierState,
        row: &[(KeyId, u64)],
    ) -> Result<Self, String> {
        state.validate(scheme)?;
        let parts = partition_state(state, n_shards)
            .into_iter()
            .enumerate()
            .map(|(s, ps)| ClassifierPart::from_state(ShardSpec::new(s, n_shards), scheme, ps))
            .collect::<Result<Vec<_>, _>>()?;
        let mut rows: Vec<Vec<(KeyId, u64)>> = vec![Vec::new(); n_shards];
        for &(key, bytes) in row {
            rows[ShardSpec::owner(key, n_shards)].push((key, bytes));
        }
        let mut engine = Self::spawn(
            SealCoordinator::resume(detector, gamma, state.interval, state.smoothed),
            scheme,
            parts,
            rows,
            secs,
        );
        engine.dirty = !row.is_empty();
        Ok(engine)
    }

    fn spawn(
        coord: SealCoordinator<D>,
        scheme: Scheme,
        parts: Vec<ClassifierPart>,
        rows: Vec<Vec<(KeyId, u64)>>,
        secs: f64,
    ) -> Self {
        let (resp_tx, resp_rx) = channel();
        let mut job_txs = Vec::with_capacity(parts.len());
        let mut handles = Vec::with_capacity(parts.len());
        for (part, row_items) in parts.into_iter().zip(rows) {
            let spec = part.spec();
            let mut worker = Worker {
                spec,
                part,
                secs,
                row: Vec::new(),
                touched: Vec::new(),
            };
            for (key, bytes) in row_items {
                worker.bin(key, bytes);
            }
            let (job_tx, job_rx) = channel();
            let resp = resp_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("eleph-shard-{}", spec.shard()))
                    .spawn(move || worker.run(job_rx, resp))
                    .expect("spawn shard worker"),
            );
            job_txs.push(job_tx);
        }
        ShardEngine {
            coord,
            scheme,
            pending: Vec::with_capacity(SHARD_BATCH),
            dirty: false,
            job_txs,
            resp_rx,
            handles,
        }
    }

    /// Number of shards.
    pub(crate) fn n_shards(&self) -> usize {
        self.job_txs.len()
    }

    /// Buffer one attributed pair; broadcasts when the batch fills.
    /// Zero-byte packets are attributed but leave no row entry (same as
    /// the serial engine), so they never cross to the workers at all.
    #[inline]
    pub(crate) fn bin(&mut self, key: KeyId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.dirty = true;
        self.pending.push((key, bytes));
        if self.pending.len() >= SHARD_BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let items =
            Arc::new(std::mem::replace(&mut self.pending, Vec::with_capacity(SHARD_BATCH)));
        for tx in &self.job_txs {
            tx.send(Job::Items(items.clone())).expect("shard worker disconnected");
        }
    }

    /// Whether the open interval has accumulated any traffic.
    pub(crate) fn has_open_traffic(&self) -> bool {
        self.dirty
    }

    /// Run the two-phase seal barrier (see the module docs) and return
    /// the merged interval outcome — bit-identical to the serial
    /// classifier's.
    pub(crate) fn seal_interval(&mut self) -> IntervalOutcome {
        self.flush();
        let n = self.job_txs.len();
        // Phase 1: collect every shard's snapshot slice.
        for tx in &self.job_txs {
            tx.send(Job::Seal).expect("shard worker disconnected");
        }
        let mut slices: Vec<Option<Vec<(KeyId, f32)>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.resp_rx.recv().expect("shard worker disconnected") {
                Resp::Snapshot(s, snap) => slices[s] = Some(snap),
                _ => unreachable!("seal phase received a non-snapshot response"),
            }
        }
        let slices: Vec<Vec<(KeyId, f32)>> =
            slices.into_iter().map(|s| s.expect("one snapshot per shard")).collect();
        // Global detection on the merged ascending value vector — the
        // serial classifier's exact input.
        let values = merge_values(&slices);
        let (ctx, interval, total_load) = self.coord.observe_values(&values);
        // Phase 2: broadcast the context, collect the elephants.
        for (tx, snap) in self.job_txs.iter().zip(slices) {
            tx.send(Job::Classify(ctx, snap)).expect("shard worker disconnected");
        }
        let mut obs: Vec<Option<PartObservation>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.resp_rx.recv().expect("shard worker disconnected") {
                Resp::Observation(s, o) => obs[s] = Some(o),
                _ => unreachable!("classify phase received a non-observation response"),
            }
        }
        let obs: Vec<PartObservation> =
            obs.into_iter().map(|o| o.expect("one observation per shard")).collect();
        let (elephants, elephant_load) = merge_observations(&obs);
        self.dirty = false;
        IntervalOutcome {
            interval,
            threshold: ctx.threshold,
            elephants,
            elephant_load,
            total_load,
        }
    }

    /// Export the recovery frontier: the open row (worker rows merged
    /// with pending items overlaid) and the merged serial
    /// [`ClassifierState`], cross-validated across the replicas.
    ///
    /// Pure observation: takes `&self` (channel ends are shareable), so
    /// [`crate::Pipeline::checkpoint`] keeps its serial signature.
    pub(crate) fn frontier(&self) -> (Vec<(KeyId, u64)>, ClassifierState) {
        let n = self.job_txs.len();
        for tx in &self.job_txs {
            tx.send(Job::Frontier).expect("shard worker disconnected");
        }
        let mut rows: Vec<Option<Vec<(KeyId, u64)>>> = (0..n).map(|_| None).collect();
        let mut states: Vec<Option<Box<PartState>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match self.resp_rx.recv().expect("shard worker disconnected") {
                Resp::Frontier(s, row, state) => {
                    rows[s] = Some(row);
                    states[s] = Some(state);
                }
                _ => unreachable!("frontier phase received a non-frontier response"),
            }
        }
        // Merge worker rows and overlay the pairs still sitting in the
        // pending buffer (never broadcast — this is what lets the export
        // run without a &mut flush).
        let mut merged: BTreeMap<KeyId, u64> = BTreeMap::new();
        for row in rows.into_iter().flatten() {
            for (key, bytes) in row {
                *merged.entry(key).or_insert(0) += bytes;
            }
        }
        for &(key, bytes) in &self.pending {
            *merged.entry(key).or_insert(0) += bytes;
        }
        let states: Vec<PartState> =
            states.into_iter().map(|s| *s.expect("one state per shard")).collect();
        let state =
            merge_states(&states, self.coord.intervals_observed(), self.coord.smoothed_value())
                .expect("shard replicas in lockstep");
        (merged.into_iter().collect(), state)
    }

    /// Keys currently holding classifier window state (across shards).
    pub(crate) fn tracked_keys(&self) -> usize {
        self.frontier().1.per_key.len()
    }

    /// The smoothing factor γ.
    pub(crate) fn gamma(&self) -> f64 {
        self.coord.gamma()
    }

    /// The classification scheme.
    pub(crate) fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The detector's name.
    pub(crate) fn detector_name(&self) -> String {
        self.coord.detector_name()
    }
}

impl<D> Drop for ShardEngine<D> {
    fn drop(&mut self) {
        // Dropping the job senders ends every worker's recv loop; join
        // so no thread outlives the pipeline.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// N-way merge the shards' snapshot slices (each ascending by key,
/// keys disjoint) into the global ascending value vector — the serial
/// classifier's `values` in its exact order.
fn merge_values(slices: &[Vec<(KeyId, f32)>]) -> Vec<f64> {
    let total: usize = slices.iter().map(|s| s.len()).sum();
    let mut values = Vec::with_capacity(total);
    let mut heads = vec![0usize; slices.len()];
    loop {
        let mut best: Option<(KeyId, usize)> = None;
        for (s, slice) in slices.iter().enumerate() {
            if let Some(&(key, _)) = slice.get(heads[s]) {
                if best.map_or(true, |(b, _)| key < b) {
                    best = Some((key, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        values.push(f64::from(slices[s][heads[s]].1));
        heads[s] += 1;
    }
    values
}
